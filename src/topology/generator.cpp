#include "topology/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "topology/gen_util.hpp"
#include "util/rng.hpp"

namespace vp::topology {
namespace {

using geo::PopulationCenter;
using util::Rng;

using gen::BlockAllocator;
using gen::CenterSampler;
using gen::jitter;
using gen::make_pops;
using gen::sample_distinct;

/// Closest pair of PoPs between two ASes, for link attachment points.
std::pair<std::uint16_t, std::uint16_t> closest_pops(const AsNode& a,
                                                     const AsNode& b) {
  double best = std::numeric_limits<double>::max();
  std::pair<std::uint16_t, std::uint16_t> out{0, 0};
  for (std::size_t i = 0; i < a.pops.size(); ++i) {
    for (std::size_t j = 0; j < b.pops.size(); ++j) {
      const double d =
          geo::distance_km(a.pops[i].location, b.pops[j].location);
      if (d < best) {
        best = d;
        out = {static_cast<std::uint16_t>(i), static_cast<std::uint16_t>(j)};
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Prefix plans per tier
// ---------------------------------------------------------------------------

/// Prefix lengths an AS of a given tier will announce. Heavy-tailed counts
/// drive Figure 7 (ASes announcing more prefixes see more sites); the
/// length spread drives Figure 8. `shift` lengthens every prefix when the
/// target Internet is smaller than the default 120k blocks, so giants and
/// transits shrink proportionally instead of crowding everyone out.
std::vector<std::uint8_t> plan_prefixes(AsTier tier, Rng& rng, int shift) {
  std::vector<std::uint8_t> lens;
  const auto push = [&](int len) {
    lens.push_back(static_cast<std::uint8_t>(std::min(len + shift, 24)));
  };
  switch (tier) {
    case AsTier::kStub: {
      const int n = 1 + static_cast<int>(rng.pareto(0.7, 1.6));
      for (int i = 0; i < std::min(n, 4); ++i) {
        const double x = rng.uniform();
        // Stubs are already tiny; they do not shrink with scale.
        lens.push_back(x < 0.50 ? 24 : x < 0.75 ? 23 : x < 0.90 ? 22
                       : x < 0.97 ? 21 : 20);
      }
      break;
    }
    case AsTier::kRegional: {
      push(static_cast<int>(rng.range(16, 19)));
      if (rng.chance(0.5)) push(static_cast<int>(rng.range(17, 20)));
      const int extra =
          std::min(static_cast<int>(rng.pareto(1.0, 1.1)), 24);
      for (int i = 0; i < extra; ++i)
        push(static_cast<int>(rng.range(20, 24)));
      break;
    }
    case AsTier::kTransit: {
      push(static_cast<int>(rng.range(13, 15)));
      push(static_cast<int>(rng.range(15, 17)));
      const int extra =
          8 + std::min(static_cast<int>(rng.pareto(2.0, 1.0)), 48);
      for (int i = 0; i < extra; ++i)
        push(static_cast<int>(rng.range(18, 24)));
      break;
    }
  }
  return lens;
}

// ---------------------------------------------------------------------------
// Special (named) ASes
// ---------------------------------------------------------------------------

struct SpecialAsSpec {
  std::uint32_t asn;
  const char* name;
  AsTier tier;
  std::vector<const char*> centers;
  std::vector<std::uint8_t> prefix_lens;
  bool load_balanced = false;
  double icmp_response_scale = 1.0;
  int provider_count = 2;
  bool is_giant = false;  // only generated when include_giants
  double flap_scale = 1.0;
};

std::vector<SpecialAsSpec> special_specs() {
  return {
      // Table 3 upstreams -------------------------------------------------
      // B-Root's LAX upstream. Well connected (USC/ISI heritage): many
      // transit providers, so most of the transit clique hears the LAX
      // announcement as a short customer route — the reason ~80% of
      // blocks go to LAX in the paper's Table 6.
      {226, "LOS-NETTOS", AsTier::kRegional, {"Los Angeles", "Washington"},
       {16, 19, 22}, false, 1.0, 10, false},
      {20080, "AMPATH", AsTier::kRegional,
       {"Miami", "Sao Paulo", "Buenos Aires"},
       {16, 18, 20}, false, 1.0, 2, false},
      {20473, "VULTR", AsTier::kTransit,
       {"Sydney", "Paris", "London", "Tokyo", "New York", "Amsterdam",
        "Singapore"},
       {15, 17, 19, 21, 22}, false, 1.0, 2, false},
      {2500, "WIDE", AsTier::kRegional, {"Tokyo"}, {17, 20}, false, 1.0, 1,
       false},
      {1103, "SURFNET", AsTier::kRegional, {"Amsterdam", "Enschede"},
       {16, 19}, false, 1.0, 2, false},
      {1972, "USC-ISI-E", AsTier::kRegional, {"Washington"}, {18, 21}, false,
       1.0, 2, false},
      {1251, "ANSP", AsTier::kRegional, {"Sao Paulo", "Rio de Janeiro"},
       {17, 20}, false, 1.0, 2, false},
      {39839, "DK-HOSTMASTER", AsTier::kRegional, {"Copenhagen"}, {19, 22},
       false, 1.0, 2, false},
      // Table 7 flip-heavy giants -----------------------------------------
      {4134, "CHINANET", AsTier::kRegional,
       {"Beijing", "Shanghai", "Guangzhou", "Chengdu"},
       {11, 13, 13, 15, 16, 17, 18, 18, 19, 20, 20, 21, 22, 23, 24},
       true, 0.85, 3, true, 2.5},
      {7922, "COMCAST", AsTier::kRegional,
       {"New York", "Chicago", "Dallas", "Seattle", "Miami"},
       {12, 14, 16, 17, 19, 20, 21, 22}, true, 1.0, 3, true, 0.5},
      {6983, "ITCDELTA", AsTier::kRegional, {"Washington", "Miami"},
       {15, 18, 20, 22}, true, 1.0, 2, true, 0.5},
      {6739, "ONO-AS", AsTier::kRegional, {"Madrid"}, {15, 18, 21}, true,
       1.0, 2, true, 0.6},
      {37963, "ALIBABA", AsTier::kRegional, {"Shanghai", "Beijing"},
       {14, 17, 19, 21}, true, 0.9, 2, true, 0.5},
      // ICMP-culture outliers (drive the unmappable hotspots of Fig. 4a) --
      {4766, "KORNET", AsTier::kRegional, {"Seoul"},
       {12, 14, 16, 18, 20}, false, 0.18, 3, true},
      {4713, "NTT-OCN", AsTier::kRegional, {"Tokyo", "Osaka"},
       {13, 15, 17, 20}, false, 0.55, 3, true},
      {9829, "BSNL-IN", AsTier::kRegional, {"Mumbai", "Delhi", "Bangalore"},
       {13, 15, 17, 19, 21}, false, 0.7, 2, true},
  };
}

// ---------------------------------------------------------------------------
// Generator proper
// ---------------------------------------------------------------------------

class Generator {
 public:
  explicit Generator(const TopologyConfig& config)
      : config_(config),
        rng_(config.seed),
        block_sampler_(&PopulationCenter::block_weight) {
    // Shrink the big players proportionally on smaller-than-default
    // Internets so regionals and stubs keep their share of the space.
    const double ratio =
        120'000.0 / std::max<double>(config.target_blocks, 1.0);
    if (ratio > 1.0)
      length_shift_ = static_cast<int>(std::ceil(std::log2(ratio)));
  }

  Topology run() {
    make_transits();
    make_specials();
    make_regionals();
    make_stubs();
    topo_.seal();
    return std::move(topo_);
  }

 private:
  // Assigns prefixes + blocks to an AS, spreading blocks over its PoPs.
  void allocate_addresses(AsId id, std::span<const std::uint8_t> lens) {
    AsNode& node = topo_.as_mutable(id);
    const auto centers = geo::world_centers();
    for (const std::uint8_t len : lens) {
      const net::Prefix prefix = allocator_.allocate(len);
      const std::uint32_t prefix_index = topo_.announce(id, prefix);
      const std::uint64_t count = prefix.block24_count();
      for (std::uint64_t i = 0; i < count; ++i) {
        const net::Block24 block{(prefix.base().value() >> 8) +
                                 static_cast<std::uint32_t>(i)};
        // Chunked PoP assignment: consecutive blocks share a PoP, with a
        // 5% chance of being homed elsewhere (address plans are untidy).
        std::uint16_t pop = static_cast<std::uint16_t>(
            i * node.pops.size() / std::max<std::uint64_t>(count, 1));
        if (node.pops.size() > 1 && rng_.chance(0.05))
          pop = static_cast<std::uint16_t>(rng_.below(node.pops.size()));
        topo_.add_block(block, id, pop, prefix_index);
        if (!rng_.chance(config_.ungeolocatable_rate)) {
          const Pop& p = node.pops[pop];
          const PopulationCenter& c = centers[p.center_id];
          geo::GeoRecord rec;
          rec.location = jitter(p.location, c.scatter_deg, rng_);
          rec.center_id = p.center_id;
          rec.country[0] = c.country[0];
          rec.country[1] = c.country[1];
          rec.country[2] = '\0';
          rec.continent = c.continent;
          topo_.geodb_mutable().add(block, rec);
        }
      }
    }
  }

  void make_transits() {
    for (std::uint32_t i = 0; i < config_.transit_count; ++i) {
      static constexpr std::uint32_t kTier1Asns[] = {
          174,  701,  1299, 2914, 3257, 3320, 3356, 3491,
          5511, 6453, 6762, 7018, 6939, 1239, 3549, 2828};
      AsNode node;
      node.asn = AsNumber{i < std::size(kTier1Asns) ? kTier1Asns[i]
                                                    : 90000 + i};
      node.tier = AsTier::kTransit;
      node.name = "TRANSIT-" + std::to_string(node.asn.value);
      node.multipath = rng_.chance(0.5);
      node.pops = make_pops(sample_distinct(
          block_sampler_, rng_, 14 + rng_.below(9)));
      const AsId id = topo_.add_as(std::move(node));
      transits_.push_back(id);
      allocate_addresses(id, plan_prefixes(AsTier::kTransit, rng_, length_shift_));
    }
    // Full peer mesh among transits.
    for (std::size_t i = 0; i < transits_.size(); ++i) {
      for (std::size_t j = i + 1; j < transits_.size(); ++j) {
        const auto [pi, pj] = closest_pops(topo_.as_at(transits_[i]),
                                           topo_.as_at(transits_[j]));
        topo_.link(transits_[i], pi, transits_[j], pj, Relationship::kPeer);
      }
    }
  }

  void connect_to_providers(AsId id, int provider_count,
                            std::span<const AsId> candidates) {
    const AsNode& node = topo_.as_at(id);
    // Rank candidates by distance of their closest PoP pair; pick among the
    // nearest few so that geography shapes the graph but doesn't fully
    // determine it.
    std::vector<std::pair<double, AsId>> ranked;
    for (const AsId cand : candidates) {
      if (cand == id) continue;
      const auto [pa, pb] = closest_pops(node, topo_.as_at(cand));
      ranked.emplace_back(
          geo::distance_km(node.pops[pa].location,
                           topo_.as_at(cand).pops[pb].location),
          cand);
    }
    std::sort(ranked.begin(), ranked.end());
    // First pass: take each nearest candidate with 70% probability so the
    // graph is geography-shaped but not geography-determined. Second
    // pass: top up to the requested count so well-connected ASes (like
    // B-Root's LAX upstream) reliably get their full provider set.
    std::vector<bool> taken(ranked.size(), false);
    int linked = 0;
    for (std::size_t i = 0; i < ranked.size() && linked < provider_count;
         ++i) {
      if (!rng_.chance(0.7)) continue;
      taken[i] = true;
      const AsId provider = ranked[i].second;
      const auto [pa, pb] = closest_pops(node, topo_.as_at(provider));
      topo_.link(id, pa, provider, pb, Relationship::kProvider);
      ++linked;
    }
    for (std::size_t i = 0; i < ranked.size() && linked < provider_count;
         ++i) {
      if (taken[i]) continue;
      const AsId provider = ranked[i].second;
      const auto [pa, pb] = closest_pops(node, topo_.as_at(provider));
      topo_.link(id, pa, provider, pb, Relationship::kProvider);
      ++linked;
    }
  }

  void make_specials() {
    for (const SpecialAsSpec& spec : special_specs()) {
      if (spec.is_giant && !config_.include_giants) continue;
      AsNode node;
      node.asn = AsNumber{spec.asn};
      node.tier = spec.tier;
      node.name = spec.name;
      node.load_balanced = spec.load_balanced;
      node.flap_scale = spec.flap_scale;
      node.multipath = spec.load_balanced || rng_.chance(0.5);
      node.icmp_response_scale = spec.icmp_response_scale;
      std::vector<std::uint16_t> centers;
      centers.reserve(spec.centers.size());
      for (const char* name : spec.centers)
        centers.push_back(center_by_name(name));
      node.pops = make_pops(centers);
      const AsId id = topo_.add_as(std::move(node));
      specials_.push_back(id);
      if (spec.tier == AsTier::kTransit) transit_like_.push_back(id);
      std::vector<std::uint8_t> shifted_lens;
      shifted_lens.reserve(spec.prefix_lens.size());
      for (const std::uint8_t len : spec.prefix_lens) {
        shifted_lens.push_back(static_cast<std::uint8_t>(
            std::min<int>(len + length_shift_, 24)));
      }
      allocate_addresses(id, shifted_lens);
      if (spec.asn == 20080) {
        // AMPATH's transit mix is what gives the MIA site a routing
        // identity: two carriers it shares with B-Root's LAX upstream
        // (there, the two announcements tie at customer class and
        // prepending can move traffic), and two exclusive carriers whose
        // whole customer cones stay MIA even at +3 prepending — the
        // paper's "likely customers of MIA's ISP" residue (§6.1).
        const auto p226 = providers_of(topo_.find_as(AsNumber{226}));
        std::vector<AsId> shared(p226.begin(), p226.end());
        std::vector<AsId> exclusive;
        for (const AsId t : transits_)
          if (!p226.contains(t)) exclusive.push_back(t);
        connect_to_providers(id, 2, shared);
        // The exclusive carriers are modest ones (fewest PoPs): AMPATH
        // is an academic exchange, not a tier-1 customer magnet.
        std::sort(exclusive.begin(), exclusive.end(), [&](AsId a, AsId b) {
          return topo_.as_at(a).pops.size() < topo_.as_at(b).pops.size();
        });
        if (!exclusive.empty()) {
          const auto [pa, pb] =
              closest_pops(topo_.as_at(id), topo_.as_at(exclusive.front()));
          topo_.link(id, pa, exclusive.front(), pb,
                     Relationship::kProvider);
        }
      } else {
        connect_to_providers(id, spec.provider_count, transits_);
      }
      // Load-balanced giants keep several equally good upstreams: add one
      // more provider at a *distant* PoP so tied routes to different sites
      // are plausible.
      if (spec.load_balanced) {
        std::vector<AsId> shuffled = transits_;
        for (std::size_t i = shuffled.size(); i > 1; --i)
          std::swap(shuffled[i - 1], shuffled[rng_.below(i)]);
        connect_to_providers(id, 1, shuffled);
      }
    }
    ampath_ = topo_.find_as(AsNumber{20080});
    // The paper observes most of China choosing the MIA site (Figure 2b)
    // — a pure routing-policy artifact. Mirror it: Chinanet buys transit
    // from one of AMPATH's providers and sets local-pref to favor routes
    // learned over that link (a standard TE community).
    const AsId chinanet = topo_.find_as(AsNumber{4134});
    if (chinanet != kNoAs && ampath_ != kNoAs) {
      // Use an AMPATH-exclusive carrier (one that is NOT also a transit
      // of the LAX upstream) so its customer cone deterministically
      // reaches MIA.
      // Two equally-preferred carriers: Chinanet's traffic engineering
      // pins routes learned over both links above everything else, and
      // load-balances between them. For B-Root the AMPATH-exclusive
      // carrier's MIA route dominates the pair (most of China -> MIA,
      // Figure 2b); for multi-site deployments the pair frequently
      // disagrees, which is what makes Chinanet the paper's top flipping
      // AS (Table 7).
      auto ampath_providers = providers_of(ampath_);
      const auto p226 = providers_of(topo_.find_as(AsNumber{226}));
      std::vector<AsId> preferred;
      for (const AsId t : ampath_providers)
        if (!p226.contains(t)) preferred.push_back(t);  // AMPATH-exclusive
      // ...plus one global carrier from the *other* camp, so the pair
      // routinely disagrees about the best site and the load balancer
      // actually has two different exits to spray across.
      AsId other_camp = kNoAs;
      std::size_t most_pops = 0;
      for (const AsId t : p226) {
        if (topo_.as_at(t).pops.size() > most_pops) {
          most_pops = topo_.as_at(t).pops.size();
          other_camp = t;
        }
      }
      if (other_camp != kNoAs) preferred.push_back(other_camp);
      if (preferred.size() > 2) preferred.resize(2);
      for (const AsId via : preferred) {
        const auto [pa, pb] =
            closest_pops(topo_.as_at(chinanet), topo_.as_at(via));
        topo_.link(chinanet, pa, via, pb, Relationship::kProvider);
        topo_.set_local_pref_bonus(chinanet, via, 1);
      }
    }
  }

  /// The set of ASes `id` buys transit from.
  std::set<AsId> providers_of(AsId id) const {
    std::set<AsId> out;
    if (id == kNoAs) return out;
    for (const Link& l : topo_.as_at(id).links)
      if (l.rel == Relationship::kProvider) out.insert(l.neighbor);
    return out;
  }

  void make_regionals() {
    // Budget: regionals take roughly 30% of the target block count.
    // Regionals take just over half of whatever space the giants,
    // transits, and specials left; stubs fill the remainder.
    const auto used = static_cast<std::uint32_t>(topo_.block_count());
    const std::uint32_t budget =
        config_.target_blocks > used
            ? (config_.target_blocks - used) * 11 / 20
            : 0;
    const auto before = static_cast<std::uint32_t>(topo_.block_count());
    while (topo_.block_count() - before < budget) {
      AsNode node;
      node.asn = AsNumber{next_asn_++};
      node.tier = AsTier::kRegional;
      const std::uint16_t home = block_sampler_.sample(rng_);
      node.name = "REG-" + std::to_string(node.asn.value);
      node.load_balanced = rng_.chance(config_.load_balanced_regional_rate);
      // 1-5 PoPs: home plus nearby centers on the same continent.
      std::vector<std::uint16_t> centers{home};
      const auto world = geo::world_centers();
      const std::size_t extra = rng_.below(5);
      std::vector<std::pair<double, std::uint16_t>> near;
      for (std::uint16_t c = 0; c < world.size(); ++c) {
        if (c == home || world[c].continent != world[home].continent)
          continue;
        near.emplace_back(
            geo::distance_km(world[home].location, world[c].location), c);
      }
      std::sort(near.begin(), near.end());
      for (std::size_t i = 0; i < extra && i < near.size(); ++i)
        centers.push_back(near[i].second);
      node.pops = make_pops(centers);
      const AsId id = topo_.add_as(std::move(node));
      regionals_.push_back(id);
      regionals_by_center_[home].push_back(id);
      allocate_addresses(id, plan_prefixes(AsTier::kRegional, rng_, length_shift_));
      // Bigger networks (more announced prefixes) are more likely to run
      // BGP multipath — the Figure 7 trend: more prefixes, more sites.
      {
        AsNode& placed = topo_.as_mutable(id);
        placed.multipath =
            placed.load_balanced ||
            rng_.chance(std::min(0.85, 0.25 + 0.10 * placed.prefix_count));
      }

      // Providers: South-American regionals in the AMPATH footprint prefer
      // AMPATH (the paper's Figure 2b story: AMPATH is well connected in
      // Brazil/Argentina but not on the west coast).
      const auto& home_center = geo::world_centers()[home];
      const bool ampath_zone =
          home_center.continent == geo::Continent::kSouthAmerica &&
          (home_center.country[0] == 'B' ||  // BR
           home_center.country[0] == 'A');   // AR
      if (ampath_zone && ampath_ != kNoAs && rng_.chance(0.8)) {
        const auto [pa, pb] = closest_pops(topo_.as_at(id),
                                           topo_.as_at(ampath_));
        topo_.link(id, pa, ampath_, pb, Relationship::kProvider);
        connect_to_providers(id, static_cast<int>(rng_.below(2)),
                             all_transit_candidates());
      } else if (regionals_.size() > 8 && rng_.chance(0.25)) {
        // Second-tier regional: buys transit from other regionals, adding
        // the AS-path-length diversity that makes prepending shift load
        // gradually rather than all at once (§6.1, Figure 5).
        connect_to_providers(id, 1 + static_cast<int>(rng_.below(2)),
                             regionals_);
        if (rng_.chance(0.4))
          connect_to_providers(id, 1, all_transit_candidates());
      } else {
        connect_to_providers(id, 1 + static_cast<int>(rng_.below(3)),
                             all_transit_candidates());
      }
      // Occasional same-continent regional peering.
      if (regionals_.size() > 4 && rng_.chance(0.3)) {
        const AsId other =
            regionals_[rng_.below(regionals_.size() - 1)];
        if (other != id &&
            topo_.as_at(other).pops[0].center_id != home) {
          const auto [pa, pb] =
              closest_pops(topo_.as_at(id), topo_.as_at(other));
          topo_.link(id, pa, other, pb, Relationship::kPeer);
        }
      }
    }
  }

  std::vector<AsId> all_transit_candidates() const {
    std::vector<AsId> out = transits_;
    out.insert(out.end(), transit_like_.begin(), transit_like_.end());
    return out;
  }

  void make_stubs() {
    while (topo_.block_count() < config_.target_blocks) {
      AsNode node;
      node.asn = AsNumber{next_asn_++};
      node.tier = AsTier::kStub;
      const std::uint16_t home = block_sampler_.sample(rng_);
      node.name = "STUB-" + std::to_string(node.asn.value);
      node.pops = make_pops(std::array{home});
      const AsId id = topo_.add_as(std::move(node));
      allocate_addresses(id, plan_prefixes(AsTier::kStub, rng_, 0));
      {
        AsNode& placed = topo_.as_mutable(id);
        placed.multipath =
            rng_.chance(std::min(0.8, 0.18 + 0.16 * placed.prefix_count));
      }

      // Providers: prefer regionals homed at the same center; fall back to
      // any regional, then transit. A quarter of stubs multihome, and a
      // third of those pick the second provider with no geographic bias —
      // cross-cone multihoming is where path-length comparisons (and thus
      // prepending sensitivity) live.
      const auto it = regionals_by_center_.find(home);
      if (it != regionals_by_center_.end() && !it->second.empty()) {
        connect_to_providers(id, 1, it->second);
      } else if (!regionals_.empty()) {
        connect_to_providers(id, 1, regionals_);
      } else {
        connect_to_providers(id, 1, transits_);
      }
      if (rng_.chance(0.35) && !regionals_.empty()) {
        if (rng_.chance(0.33)) {
          const AsId anywhere = regionals_[rng_.below(regionals_.size())];
          if (anywhere != id) {
            const auto [pa, pb] =
                closest_pops(topo_.as_at(id), topo_.as_at(anywhere));
            topo_.link(id, pa, anywhere, pb, Relationship::kProvider);
          }
        } else {
          connect_to_providers(id, 1, regionals_);
        }
      }
    }
  }

  TopologyConfig config_;
  Rng rng_;
  CenterSampler block_sampler_;
  BlockAllocator allocator_;
  Topology topo_;
  std::vector<AsId> transits_;
  std::vector<AsId> transit_like_;  // e.g. Vultr
  std::vector<AsId> specials_;
  std::vector<AsId> regionals_;
  std::unordered_map<std::uint16_t, std::vector<AsId>> regionals_by_center_;
  AsId ampath_ = kNoAs;
  std::uint32_t next_asn_ = 60000;
  int length_shift_ = 0;
};

}  // namespace

TopologyConfig TopologyConfig::scaled(double factor) {
  TopologyConfig config;
  config.target_blocks =
      static_cast<std::uint32_t>(config.target_blocks * factor);
  return config;
}

std::uint16_t center_by_name(std::string_view name) {
  const auto centers = geo::world_centers();
  for (std::uint16_t i = 0; i < centers.size(); ++i)
    if (centers[i].name == name) return i;
  std::fprintf(stderr, "unknown population center: %.*s\n",
               static_cast<int>(name.size()), name.data());
  std::abort();
}

Topology generate_topology(const TopologyConfig& config) {
  return Generator{config}.run();
}

}  // namespace vp::topology
