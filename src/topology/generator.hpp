// Generates a synthetic AS-level Internet with the structural features the
// paper's analyses depend on (see DESIGN.md §2 for the substitution table):
//
//  * a clique of tier-1 transit ASes with world-wide PoPs;
//  * regional ISPs per continent with 1-5 PoPs and 1-3 transit providers;
//  * a long tail of single-PoP stub ASes;
//  * "special" ASes mirroring the paper's named networks — the Table 3
//    upstreams (AS226 at LAX, AS20080/AMPATH at MIA with strong eastern
//    South-America connectivity, AS20473/Vultr, AS2500/WIDE with weak
//    connectivity, ...) and the Table 7 flip-heavy ASes (AS4134 Chinanet,
//    AS7922 Comcast, ...);
//  * per-AS announced prefixes spanning a wide range of lengths (Figure 8)
//    with heavy-tailed per-AS prefix counts (Figure 7);
//  * per-/24 geolocation with population-realistic placement and a small
//    un-geolocatable residue (Table 4).
//
// Everything is driven by a single seed; the same config reproduces the
// same Internet bit-for-bit.
#pragma once

#include <cstdint>

#include "topology/topology.hpp"

namespace vp::topology {

struct TopologyConfig {
  std::uint64_t seed = 42;

  /// Approximate number of /24 blocks in the generated Internet. The
  /// generator fills categories in order (giants, transits, specials,
  /// regionals, then stubs) and stops adding stubs once the target is
  /// reached, so the result lands within a few percent of this value.
  std::uint32_t target_blocks = 120'000;

  /// Number of tier-1 transit ASes (fully meshed peer clique).
  std::uint32_t transit_count = 12;

  /// Include the giant named ASes (Chinanet, Comcast, ...). Disabled by
  /// some unit tests that want a tiny, fully hand-checkable topology.
  bool include_giants = true;

  /// Fraction of blocks deliberately left out of the geolocation db
  /// (mirrors the 678 unlocatable blocks of Table 4).
  double ungeolocatable_rate = 0.0002;

  /// Fraction of generated regional ASes with load-balanced multipath
  /// (candidate catchment flippers beyond the named giants).
  double load_balanced_regional_rate = 0.02;

  /// Returns a config whose size is `factor` × the default 120k blocks.
  static TopologyConfig scaled(double factor);
};

/// Builds the Internet. Deterministic in `config`.
Topology generate_topology(const TopologyConfig& config);

/// Finds a population center by name; aborts if absent (programmer error).
std::uint16_t center_by_name(std::string_view name);

}  // namespace vp::topology
