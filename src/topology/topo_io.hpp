// Topology persistence and fingerprinting.
//
// `vpctl gen --out` saves a generated topology so scale experiments can
// reload it instead of regenerating; the golden-stats regression test and
// the determinism suite share structural_digest() as the canonical
// fingerprint of graph structure.
#pragma once

#include <cstdint>
#include <string>

#include "topology/topology.hpp"

namespace vp::topology {

/// Order-sensitive 64-bit fingerprint of everything structural in a
/// topology: ASes (ASN, tier, flags, pop centers, index ranges), links
/// (neighbor, relationship, attachment pops, pref bonuses), announced
/// prefixes, block ownership, and geo coverage (block -> center mapping).
/// Floating-point geo jitter is deliberately excluded — it passes through
/// libm (normal/cos/log), whose last-ulp behavior varies across hosts,
/// and golden files must not.
std::uint64_t structural_digest(const Topology& topo);

/// Serializes the full topology (including geo coordinates) to a compact
/// binary image, CRC-framed and carrying its structural digest.
std::string serialize_topology(const Topology& topo);

/// Atomically writes serialize_topology() to `path`. Returns false on I/O
/// failure.
bool save_topology(const Topology& topo, const std::string& path);

/// Rebuilds a topology from a serialized image. Returns false on a
/// malformed image, CRC mismatch, or digest mismatch after the rebuild
/// (`error` gets a one-line reason).
bool deserialize_topology(const std::string& bytes, Topology& out,
                          std::string& error);

/// Reads and deserializes `path`.
bool load_topology(const std::string& path, Topology& out,
                   std::string& error);

}  // namespace vp::topology
