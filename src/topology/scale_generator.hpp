// Internet-scale deterministic topology generator.
//
// The paper-replica generator (generator.hpp) grows the graph from one
// sequential RNG stream, which caps it at ~10k ASes: every draw depends on
// every prior draw, so nothing parallelizes and nothing can be regenerated
// in isolation. This generator takes the communication-free approach of the
// KaGen graph-generator family instead: all randomness is keyed by stable
// per-entity identity — AS v draws from `Rng{hash(seed, phase, v)}`, block b
// from a stateless `hash(seed, phase, b)` — so any worker can compute any
// AS's plan without seeing any other draw. Shards are just chunked AS-id
// ranges; the emitted topology is bit-identical for every thread count and
// shard size, and a single shard can be regenerated in isolation
// (plan_shard), which the determinism suite exercises directly.
//
// Scale target: >= 500k ASes and the paper's 6.4M /24 hitlist (§4 of the
// paper measures 6.4M blocks; EXPERIMENTS.md deviation #1).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "topology/topology.hpp"

namespace vp::topology {

/// Knobs for the sharded generator. Degree-distribution and multihoming
/// knobs follow the AS-relationship structure arguments of "Inferring
/// Catchment in Internet Routing" (see PAPERS.md): the multi-site-AS
/// fraction of Figure 7 is driven by multihoming degree and peering
/// density, so both are first-class here.
struct ScaleConfig {
  std::uint64_t seed = 42;
  std::uint32_t as_count = 10'000;
  std::uint32_t target_blocks = 130'000;  // ~13 blocks/AS, paper-like ratio
  std::uint32_t transit_count = 16;       // tier-1 clique size
  double regional_fraction = 0.12;   // share of non-transit ASes that are
                                     // regional providers
  double multihoming_mean = 0.35;    // mean extra providers per stub
  double peering_density = 0.15;     // chance a regional peers laterally
  double second_tier_rate = 0.30;    // chance a regional buys from a regional
  double load_balanced_rate = 0.02;  // regionals that spray across ties
  double ungeolocatable_rate = 0.0002;
  std::uint32_t shard_size = 4096;  // ASes per shard (any value >= 1 yields
                                    // the same topology)
  unsigned threads = 0;             // 0 = hardware concurrency
};

/// A planned link, from the planning AS toward a lower-id peer. Every edge
/// in the graph has exactly one initiator (providers and peer targets
/// always have lower ids), which gives a canonical global edge order.
struct PlannedEdge {
  AsId peer = kNoAs;
  Relationship rel = Relationship::kProvider;  // what `peer` is to this AS
  std::uint16_t local_pop = 0;
  std::uint16_t remote_pop = 0;
};

/// Everything AS v contributes to the topology, computed independently of
/// every other AS.
struct AsPlan {
  AsNode node;
  std::vector<std::uint8_t> prefix_lens;  // announced prefix lengths
  std::uint32_t block_demand = 0;         // sum of /24s under those prefixes
  std::vector<PlannedEdge> edges;
};

class ScaleGenerator {
 public:
  explicit ScaleGenerator(const ScaleConfig& config);
  ~ScaleGenerator();

  std::uint32_t as_count() const;
  std::uint32_t shard_count() const;

  /// Plans all ASes of one shard (ids [shard*shard_size, ...)), touching no
  /// state outside the shard. Public so tests can prove seeded-substream
  /// independence: a shard planned in isolation must match its slice of the
  /// full run.
  std::vector<AsPlan> plan_shard(std::uint32_t shard) const;

  /// Plans a single AS (pure function of config + id).
  AsPlan plan_as(AsId v) const;

  /// Builds the full topology: parallel per-shard planning, sequential
  /// arithmetic-only stitching (nodes, edges, address allocation), then
  /// parallel per-block materialization. Bit-identical for any
  /// threads/shard_size.
  Topology generate() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience wrapper: ScaleGenerator{config}.generate().
Topology generate_scale_topology(const ScaleConfig& config);

}  // namespace vp::topology
