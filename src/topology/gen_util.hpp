// Building blocks shared by the two topology generators: the sequential
// paper-replica generator (generator.cpp) and the sharded deterministic
// ScaleGenerator (scale_generator.cpp).
//
// Everything here is either pure arithmetic (BlockAllocator) or draws
// only from a caller-supplied Rng, so the helpers are usable from
// per-entity substreams without hidden shared state.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "geo/world.hpp"
#include "topology/as_node.hpp"
#include "util/rng.hpp"

namespace vp::topology::gen {

// ---------------------------------------------------------------------------
// Address space allocation
// ---------------------------------------------------------------------------

/// Hands out aligned runs of /24 blocks, skipping reserved ranges.
class BlockAllocator {
 public:
  /// Allocates an aligned prefix of the given length (<= 24) and returns it.
  net::Prefix allocate(std::uint8_t length) {
    assert(length <= 24);
    const std::uint32_t count = 1u << (24 - length);
    std::uint32_t base = (next_ + count - 1) & ~(count - 1);  // align up
    base = skip_reserved(base, count);
    next_ = base + count;
    return net::Prefix{net::Ipv4Address{base << 8}, length};
  }

  std::uint32_t allocated_blocks() const { return next_ - kFirstBlock; }

 private:
  // Reserved /8s we never allocate from: 0, 10, 127, and 224+ (multicast).
  static bool reserved(std::uint32_t block_index) {
    const std::uint32_t octet = block_index >> 16;
    return octet == 0 || octet == 10 || octet == 127 || octet >= 224;
  }

  static std::uint32_t skip_reserved(std::uint32_t base, std::uint32_t count) {
    while (reserved(base) || reserved(base + count - 1)) {
      // Jump to the start of the next /8 and realign.
      base = ((base >> 16) + 1) << 16;
      base = (base + count - 1) & ~(count - 1);
    }
    return base;
  }

  static constexpr std::uint32_t kFirstBlock = 1u << 16;  // 1.0.0.0
  std::uint32_t next_ = kFirstBlock;
};

// ---------------------------------------------------------------------------
// Center sampling helpers
// ---------------------------------------------------------------------------

/// Weighted sampler over population centers.
class CenterSampler {
 public:
  explicit CenterSampler(double geo::PopulationCenter::* weight) {
    const auto centers = geo::world_centers();
    cumulative_.reserve(centers.size());
    double acc = 0.0;
    for (const auto& c : centers) {
      acc += c.*weight;
      cumulative_.push_back(acc);
    }
  }

  std::uint16_t sample(util::Rng& rng) const {
    const double x = rng.uniform() * cumulative_.back();
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), x);
    return static_cast<std::uint16_t>(it - cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

/// Samples `k` distinct centers.
inline std::vector<std::uint16_t> sample_distinct(const CenterSampler& sampler,
                                                  util::Rng& rng,
                                                  std::size_t k) {
  std::vector<std::uint16_t> out;
  std::size_t guard = 0;
  while (out.size() < k && guard++ < k * 40) {
    const std::uint16_t c = sampler.sample(rng);
    if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
  }
  return out;
}

inline geo::LatLon jitter(geo::LatLon base, double stddev_deg,
                          util::Rng& rng) {
  geo::LatLon out;
  out.lat = std::clamp(base.lat + rng.normal(0.0, stddev_deg), -89.0, 89.0);
  double lon = base.lon + rng.normal(0.0, stddev_deg);
  while (lon < -180.0) lon += 360.0;
  while (lon >= 180.0) lon -= 360.0;
  out.lon = lon;
  return out;
}

inline std::vector<Pop> make_pops(std::span<const std::uint16_t> center_ids) {
  const auto centers = geo::world_centers();
  std::vector<Pop> pops;
  pops.reserve(center_ids.size());
  for (const std::uint16_t id : center_ids)
    pops.push_back(Pop{id, centers[id].location});
  return pops;
}

}  // namespace vp::topology::gen
