// The assembled simulated Internet: ASes, links, prefixes, blocks, geo.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "geo/geodb.hpp"
#include "net/prefix_trie.hpp"
#include "topology/as_node.hpp"

namespace vp::topology {

class Topology {
 public:
  // --- read API -----------------------------------------------------------
  std::size_t as_count() const { return ases_.size(); }
  const AsNode& as_at(AsId id) const { return ases_[id]; }
  std::span<const AsNode> ases() const { return ases_; }

  /// Looks up an AS by its number; kNoAs if absent.
  AsId find_as(AsNumber asn) const;

  std::span<const AnnouncedPrefix> announced_prefixes() const {
    return prefixes_;
  }
  std::span<const BlockInfo> blocks() const { return blocks_; }
  std::size_t block_count() const { return blocks_.size(); }

  /// Ownership record for a block; nullptr if the block is unallocated.
  const BlockInfo* block_info(net::Block24 block) const;

  /// Longest-prefix-match against announced prefixes.
  std::optional<std::pair<net::Prefix, std::uint32_t>> route_lookup(
      net::Ipv4Address addr) const {
    return trie_.lookup(addr);
  }

  const geo::GeoDatabase& geodb() const { return geodb_; }

  // --- build API (used by the generator) -----------------------------------
  AsId add_as(AsNode node);
  AsNode& as_mutable(AsId id) { return ases_[id]; }

  /// Records a bidirectional relationship: `upper` is `lower`'s provider
  /// (or a symmetric peering when rel == kPeer).
  void link(AsId lower, std::uint16_t lower_pop, AsId upper,
            std::uint16_t upper_pop, Relationship lower_sees_upper_as);

  /// Sets the local-pref bonus `from` applies to routes learned from `to`.
  /// No-op if the link does not exist.
  void set_local_pref_bonus(AsId from, AsId to, std::int8_t bonus);

  /// Registers an announced prefix and its member blocks for `as_id`,
  /// distributing blocks across the AS's PoPs. Returns the prefix index.
  std::uint32_t announce(AsId as_id, net::Prefix prefix);

  /// Adds one /24 under an announced prefix, homed at `pop`.
  void add_block(net::Block24 block, AsId as_id, std::uint16_t pop,
                 std::uint32_t prefix_index);

  geo::GeoDatabase& geodb_mutable() { return geodb_; }

  // --- bulk block build (scale generator) ----------------------------------
  /// Pre-sizes blocks_ so set_block() may fill disjoint slices from
  /// parallel workers. Per-AS first_block/block_count must be assigned by
  /// the caller (via as_mutable); finish_bulk_blocks() rebuilds the
  /// block -> slot index afterwards.
  void begin_bulk_blocks(std::size_t total);

  /// Writes one pre-assigned block slot. Thread-safe for distinct indexes.
  void set_block(std::uint32_t index, const BlockInfo& info) {
    blocks_[index] = info;
  }

  /// Rebuilds the direct-mapped block index after a bulk fill.
  void finish_bulk_blocks();

  /// Finalizes derived indexes after generation.
  void seal();

  /// Approximate heap footprint of the topology (adjacency, prefixes,
  /// blocks, indexes, geo database) — the scale benchmarks report this as
  /// bytes/AS.
  std::size_t memory_bytes() const;

 private:
  void index_block(net::Block24 block, std::uint32_t index);

  static constexpr std::uint32_t kNoBlockSlot = 0xffffffff;

  std::vector<AsNode> ases_;
  std::vector<AnnouncedPrefix> prefixes_;
  std::vector<BlockInfo> blocks_;
  std::unordered_map<std::uint32_t, AsId> by_asn_;
  // Direct-mapped block -> blocks_ slot over the allocated /24 span
  // (dense in practice; kNoBlockSlot marks holes). Replaces a hash map
  // that dominated both lookup latency and memory at 6.4M blocks.
  std::uint32_t block_first_ = 0;
  std::vector<std::uint32_t> block_slots_;
  net::PrefixTrie<std::uint32_t> trie_;  // prefix -> index in prefixes_
  geo::GeoDatabase geodb_;
};

}  // namespace vp::topology
