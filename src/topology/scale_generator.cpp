#include "topology/scale_generator.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "geo/world.hpp"
#include "topology/gen_util.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace vp::topology {
namespace {

using geo::PopulationCenter;
using util::Rng;
using util::hash_combine;
using util::mix64;

// Phase tags keeping the per-entity substreams independent: the draws an
// AS makes for its PoPs can never alias the draws it makes for its edges.
constexpr std::uint64_t kHomeTag = 0x486f6d65;   // "Home"
constexpr std::uint64_t kPopsTag = 0x506f7073;   // "Pops"
constexpr std::uint64_t kPlanTag = 0x506c616e;   // "Plan"
constexpr std::uint64_t kEdgeTag = 0x45646765;   // "Edge"
constexpr std::uint64_t kFlagTag = 0x466c6167;   // "Flag"
constexpr std::uint64_t kBlockTag = 0x426c6f63;  // "Bloc"
constexpr std::uint64_t kGeoTag = 0x47656f52;    // "GeoR"

constexpr double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Pairwise distances over the fixed world centers, computed once per
/// generation. All structural decisions (nearest PoP, same-continent
/// neighbor lists) compare entries of this matrix with index tiebreaks, so
/// they are stable across libm implementations and evaluation orders.
struct CenterGeometry {
  CenterGeometry() {
    const auto centers = geo::world_centers();
    n = centers.size();
    dist.resize(n * n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        dist[i * n + j] =
            geo::distance_km(centers[i].location, centers[j].location);
    near_same_continent.resize(n);
    for (std::size_t c = 0; c < n; ++c) {
      std::vector<std::pair<double, std::uint16_t>> ranked;
      for (std::size_t o = 0; o < n; ++o) {
        if (o == c || centers[o].continent != centers[c].continent) continue;
        ranked.emplace_back(dist[c * n + o], static_cast<std::uint16_t>(o));
      }
      std::sort(ranked.begin(), ranked.end());
      for (const auto& [d, o] : ranked) near_same_continent[c].push_back(o);
    }
  }

  double at(std::uint16_t a, std::uint16_t b) const { return dist[a * n + b]; }

  /// Index of the pop in `pops` whose center is closest to `center`
  /// (ties: lowest index).
  std::uint16_t nearest_pop(std::span<const Pop> pops,
                            std::uint16_t center) const {
    std::uint16_t best = 0;
    double best_d = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < pops.size(); ++i) {
      const double d = at(pops[i].center_id, center);
      if (d < best_d) {
        best_d = d;
        best = static_cast<std::uint16_t>(i);
      }
    }
    return best;
  }

  /// Closest pop pair between two pop lists (ties: lexicographic indexes).
  std::pair<std::uint16_t, std::uint16_t> closest_pair(
      std::span<const Pop> a, std::span<const Pop> b) const {
    std::pair<std::uint16_t, std::uint16_t> best{0, 0};
    double best_d = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < a.size(); ++i) {
      for (std::size_t j = 0; j < b.size(); ++j) {
        const double d = at(a[i].center_id, b[j].center_id);
        if (d < best_d) {
          best_d = d;
          best = {static_cast<std::uint16_t>(i),
                  static_cast<std::uint16_t>(j)};
        }
      }
    }
    return best;
  }

  std::size_t n = 0;
  std::vector<double> dist;
  std::vector<std::vector<std::uint16_t>> near_same_continent;
};

/// Prefix-length plan for one AS: a heavy-tailed total block demand split
/// into power-of-two prefixes (the same mechanism that drives Figures 7/8
/// in the sequential generator, expressed as a pure per-AS function).
std::vector<std::uint8_t> plan_lens(double mean, Rng& rng) {
  // Pareto(0.2308, 1.3) has unit mean, so E[demand] == mean per tier.
  const double factor = std::clamp(rng.pareto(0.2308, 1.3), 0.05, 64.0);
  auto target = static_cast<std::uint64_t>(
      std::llround(std::max(1.0, mean * factor)));
  std::vector<std::uint8_t> lens;
  while (target > 0 && lens.size() < 48) {
    std::uint64_t size = std::min<std::uint64_t>(std::bit_floor(target),
                                                 4096);  // cap at /12
    while (size > 1 && rng.chance(0.35)) size >>= 1;
    lens.push_back(static_cast<std::uint8_t>(
        24 - std::countr_zero(static_cast<std::uint32_t>(size))));
    target -= size;
  }
  return lens;
}

}  // namespace

struct ScaleGenerator::Impl {
  explicit Impl(const ScaleConfig& config)
      : cfg(config),
        root(mix64(config.seed)),
        sampler(&PopulationCenter::block_weight) {
    cfg.shard_size = std::max<std::uint32_t>(cfg.shard_size, 1);
    n_total = std::max<std::uint32_t>(cfg.as_count, 4);
    n_transit = std::clamp<std::uint32_t>(cfg.transit_count, 1, n_total);
    const std::uint32_t rest = n_total - n_transit;
    n_regional = std::min<std::uint32_t>(
        rest, static_cast<std::uint32_t>(
                  std::llround(cfg.regional_fraction * rest)));
    n_stub = rest - n_regional;

    // Address budget split by tier; empty tiers hand their share down.
    const double blocks = std::max<double>(cfg.target_blocks, 1.0);
    double bt = 0.12 * blocks, br = 0.38 * blocks, bs = 0.50 * blocks;
    if (n_regional == 0) { bs += br; br = 0; }
    if (n_stub == 0) {
      if (n_regional > 0) br += bs; else bt += bs;
      bs = 0;
    }
    // The clamps in plan_lens (factor cap, /12 ceiling, 48-prefix cap)
    // trim ~25% of the Pareto tail; scale the raw means back up so the
    // realized block count lands on target_blocks.
    constexpr double kDemandCalibration = 1.34;
    mean_t = std::max(1.0, kDemandCalibration * bt / n_transit);
    mean_r = n_regional
                 ? std::max(1.0, kDemandCalibration * br / n_regional)
                 : 0.0;
    mean_s = n_stub ? std::max(1.0, kDemandCalibration * bs / n_stub) : 0.0;

    // Transit PoP sets are pure per-AS functions, but every regional and
    // stub consults them for remote attachment points — precompute once.
    transit_pops.resize(n_transit);
    for (std::uint32_t t = 0; t < n_transit; ++t) {
      Rng rng{key(kPopsTag, t)};
      const std::size_t k = 10 + rng.below(7);
      transit_pops[t] = gen::make_pops(gen::sample_distinct(sampler, rng, k));
    }
  }

  std::uint64_t key(std::uint64_t tag, std::uint64_t id) const {
    return hash_combine(hash_combine(root, tag), id);
  }

  AsTier tier_of(AsId v) const {
    return v < n_transit                ? AsTier::kTransit
           : v < n_transit + n_regional ? AsTier::kRegional
                                        : AsTier::kStub;
  }

  std::uint16_t home_center(AsId v) const {
    Rng rng{key(kHomeTag, v)};
    return sampler.sample(rng);
  }

  /// Center ids of a regional's pops, re-derivable by any worker (the
  /// provider-selection path needs a *remote* AS's pop list without
  /// planning it in full).
  std::vector<std::uint16_t> regional_pop_centers(AsId r) const {
    const std::uint16_t home = home_center(r);
    Rng rng{key(kPopsTag, r)};
    const std::size_t extra = rng.below(5);
    std::vector<std::uint16_t> centers{home};
    const auto& near = geom.near_same_continent[home];
    for (std::size_t i = 0; i < extra && i < near.size(); ++i)
      centers.push_back(near[i]);
    return centers;
  }

  /// Pop index of regional `r` closest to `center`.
  std::uint16_t nearest_regional_pop(AsId r, std::uint16_t center) const {
    const auto centers = regional_pop_centers(r);
    std::uint16_t best = 0;
    double best_d = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < centers.size(); ++i) {
      const double d = geom.at(centers[i], center);
      if (d < best_d) {
        best_d = d;
        best = static_cast<std::uint16_t>(i);
      }
    }
    return best;
  }

  AsPlan plan_as(AsId v) const;

  ScaleConfig cfg;
  std::uint64_t root;
  std::uint32_t n_total = 0, n_transit = 0, n_regional = 0, n_stub = 0;
  double mean_t = 0, mean_r = 0, mean_s = 0;
  gen::CenterSampler sampler;
  CenterGeometry geom;
  std::vector<std::vector<Pop>> transit_pops;
};

AsPlan ScaleGenerator::Impl::plan_as(AsId v) const {
  AsPlan p;
  const AsTier tier = tier_of(v);
  p.node.asn = AsNumber{1'000'000 + v};  // disjoint from real/special ASNs
  p.node.tier = tier;
  const std::uint16_t home =
      tier == AsTier::kTransit ? 0 : home_center(v);

  // PoPs ---------------------------------------------------------------
  switch (tier) {
    case AsTier::kTransit:
      p.node.pops = transit_pops[v];
      p.node.name = "GT-" + std::to_string(p.node.asn.value);
      break;
    case AsTier::kRegional: {
      std::vector<std::uint16_t> centers = regional_pop_centers(v);
      p.node.pops = gen::make_pops(centers);
      p.node.name = "GR-" + std::to_string(p.node.asn.value);
      break;
    }
    case AsTier::kStub:
      p.node.pops = gen::make_pops(std::array{home});
      p.node.name = "GS-" + std::to_string(p.node.asn.value);
      break;
  }

  // Prefix plan --------------------------------------------------------
  {
    Rng rng{key(kPlanTag, v)};
    const double mean = tier == AsTier::kTransit    ? mean_t
                        : tier == AsTier::kRegional ? mean_r
                                                    : mean_s;
    p.prefix_lens = plan_lens(mean, rng);
    for (const std::uint8_t len : p.prefix_lens)
      p.block_demand += 1u << (24 - len);
  }

  // Edges (always toward lower ids: transits < regionals < stubs, and
  // lateral edges target lower-id members of the same tier, so applying
  // plans in id order never references a missing node and the
  // customer->provider graph is a DAG by construction) -----------------
  int extra_providers = 0;
  {
    Rng rng{key(kEdgeTag, v)};
    const auto has_edge = [&p](AsId peer) {
      for (const PlannedEdge& e : p.edges)
        if (e.peer == peer) return true;
      return false;
    };
    switch (tier) {
      case AsTier::kTransit:
        // Full peer mesh, each pair initiated by the higher id.
        for (AsId u = 0; u < v; ++u) {
          const auto [pv, pu] =
              geom.closest_pair(transit_pops[v], transit_pops[u]);
          p.edges.push_back(PlannedEdge{u, Relationship::kPeer, pv, pu});
        }
        break;
      case AsTier::kRegional: {
        const std::uint32_t lower_regionals = v - n_transit;
        const int providers = 1 + static_cast<int>(rng.below(2));
        std::vector<AsId> chosen;
        for (int i = 0; i < providers; ++i) {
          AsId t = static_cast<AsId>(rng.below(n_transit));
          for (int g = 0;
               g < 8 && std::find(chosen.begin(), chosen.end(), t) !=
                            chosen.end();
               ++g)
            t = static_cast<AsId>(rng.below(n_transit));
          if (std::find(chosen.begin(), chosen.end(), t) == chosen.end())
            chosen.push_back(t);
        }
        // Second-tier regionals buy from a lower-id regional instead of
        // their first transit — the AS-path-length diversity that makes
        // prepending shift load gradually (§6.1). Lower-id-only keeps the
        // provider DAG acyclic, and low-id regionals never do this, so
        // every chain bottoms out at a transit.
        if (lower_regionals >= 8 && rng.chance(cfg.second_tier_rate))
          chosen.front() =
              n_transit + static_cast<AsId>(rng.below(lower_regionals));
        for (const AsId c : chosen) {
          if (c < n_transit) {
            p.edges.push_back(PlannedEdge{
                c, Relationship::kProvider, 0,
                geom.nearest_pop(transit_pops[c], home)});
          } else {
            p.edges.push_back(PlannedEdge{c, Relationship::kProvider, 0,
                                          nearest_regional_pop(c, home)});
          }
        }
        if (lower_regionals >= 2 && rng.chance(cfg.peering_density)) {
          const AsId peer =
              n_transit + static_cast<AsId>(rng.below(lower_regionals));
          if (!has_edge(peer))
            p.edges.push_back(PlannedEdge{peer, Relationship::kPeer, 0,
                                          nearest_regional_pop(peer, home)});
        }
        break;
      }
      case AsTier::kStub: {
        // Primary provider: probe a few regionals for one sharing the
        // stub's home center (geography-shaped attachment), falling back
        // to the first candidate, or to a transit if there are no
        // regionals at all.
        AsId primary;
        if (n_regional > 0) {
          primary = n_transit + static_cast<AsId>(rng.below(n_regional));
          AsId probe = primary;
          for (int i = 0; i < 6; ++i) {
            if (home_center(probe) == home) {
              primary = probe;
              break;
            }
            probe = n_transit + static_cast<AsId>(rng.below(n_regional));
          }
        } else {
          primary = static_cast<AsId>(rng.below(n_transit));
        }
        const auto push_provider = [&](AsId prov) {
          if (has_edge(prov)) return;
          if (prov < n_transit) {
            p.edges.push_back(PlannedEdge{
                prov, Relationship::kProvider, 0,
                geom.nearest_pop(transit_pops[prov], home)});
          } else {
            p.edges.push_back(PlannedEdge{prov, Relationship::kProvider, 0,
                                          nearest_regional_pop(prov, home)});
          }
        };
        push_provider(primary);
        // Extra providers: geometric with mean ~= multihoming_mean (the
        // knob Figure 7's multi-site fraction responds to). Cross-cone by
        // construction — picked with no geographic bias, 40% straight
        // from the transit clique.
        const double m = std::min(cfg.multihoming_mean, 4.0);
        const double p_extra = m / (1.0 + m);
        while (extra_providers < 4 && rng.chance(p_extra)) ++extra_providers;
        for (int i = 0; i < extra_providers; ++i) {
          if (n_regional > 0 && rng.chance(0.6)) {
            push_provider(n_transit +
                          static_cast<AsId>(rng.below(n_regional)));
          } else {
            push_provider(static_cast<AsId>(rng.below(n_transit)));
          }
        }
        break;
      }
    }
  }

  // Flags ---------------------------------------------------------------
  {
    Rng rng{key(kFlagTag, v)};
    switch (tier) {
      case AsTier::kTransit:
        p.node.multipath = rng.chance(0.5);
        break;
      case AsTier::kRegional:
        p.node.load_balanced = rng.chance(cfg.load_balanced_rate);
        p.node.multipath =
            p.node.load_balanced ||
            rng.chance(std::min(
                0.85, 0.25 + 0.06 * static_cast<double>(
                                        p.prefix_lens.size())));
        break;
      case AsTier::kStub:
        // More providers and more prefixes -> more likely to see several
        // sites (Figure 7); couples the multihoming knob to multipath.
        p.node.multipath = rng.chance(std::min(
            0.85, 0.12 + 0.30 * extra_providers +
                      0.05 * static_cast<double>(p.prefix_lens.size())));
        break;
    }
  }
  return p;
}

ScaleGenerator::ScaleGenerator(const ScaleConfig& config)
    : impl_(std::make_unique<Impl>(config)) {}

ScaleGenerator::~ScaleGenerator() = default;

std::uint32_t ScaleGenerator::as_count() const { return impl_->n_total; }

std::uint32_t ScaleGenerator::shard_count() const {
  return (impl_->n_total + impl_->cfg.shard_size - 1) / impl_->cfg.shard_size;
}

AsPlan ScaleGenerator::plan_as(AsId v) const { return impl_->plan_as(v); }

std::vector<AsPlan> ScaleGenerator::plan_shard(std::uint32_t shard) const {
  const std::uint64_t lo =
      static_cast<std::uint64_t>(shard) * impl_->cfg.shard_size;
  const std::uint64_t hi =
      std::min<std::uint64_t>(lo + impl_->cfg.shard_size, impl_->n_total);
  std::vector<AsPlan> out;
  out.reserve(hi > lo ? hi - lo : 0);
  for (std::uint64_t v = lo; v < hi; ++v)
    out.push_back(impl_->plan_as(static_cast<AsId>(v)));
  return out;
}

Topology ScaleGenerator::generate() const {
  const Impl& im = *impl_;
  const std::uint32_t n = im.n_total;
  const unsigned threads = util::resolve_threads(im.cfg.threads);
  const std::uint32_t shards = shard_count();

  // Phase A: plan every AS, in parallel over shards. Plans are pure
  // per-AS functions, so any partition of the id space yields identical
  // results.
  std::vector<AsPlan> plans(n);
  util::parallel_for(shards, threads, [&](std::size_t sb, std::size_t se) {
    for (std::size_t s = sb; s < se; ++s) {
      const std::uint64_t lo =
          static_cast<std::uint64_t>(s) * im.cfg.shard_size;
      const std::uint64_t hi =
          std::min<std::uint64_t>(lo + im.cfg.shard_size, n);
      for (std::uint64_t v = lo; v < hi; ++v)
        plans[v] = im.plan_as(static_cast<AsId>(v));
    }
  });

  // Phase B: stitch nodes and edges sequentially in id order. Every
  // planned edge targets a lower id, so both endpoints exist when the
  // initiator's plan is applied, and the global edge order is canonical.
  Topology topo;
  for (std::uint32_t v = 0; v < n; ++v)
    topo.add_as(std::move(plans[v].node));
  for (std::uint32_t v = 0; v < n; ++v)
    for (const PlannedEdge& e : plans[v].edges)
      topo.link(v, e.local_pop, e.peer, e.remote_pop, e.rel);

  // Phase C: address allocation — sequential but arithmetic-only (the
  // allocator cursor is the only cross-AS state and it sees no RNG).
  struct Assigned {
    std::uint32_t slot;       // index into blocks_
    std::uint32_t base;       // first /24 index of the prefix
    std::uint32_t count;      // /24s under the prefix
    std::uint32_t prefix_index;
  };
  gen::BlockAllocator allocator;
  std::vector<Assigned> assigned;
  std::vector<std::uint32_t> as_assigned_first(n + 1, 0);
  std::uint64_t cursor = 0;
  std::uint32_t min_block = 0xffffffff, max_block = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    as_assigned_first[v] = static_cast<std::uint32_t>(assigned.size());
    AsNode& node = topo.as_mutable(v);
    node.first_block = static_cast<std::uint32_t>(cursor);
    node.block_count = plans[v].block_demand;
    for (const std::uint8_t len : plans[v].prefix_lens) {
      const net::Prefix prefix = allocator.allocate(len);
      const std::uint32_t prefix_index = topo.announce(v, prefix);
      const auto count = static_cast<std::uint32_t>(prefix.block24_count());
      const std::uint32_t base = prefix.base().value() >> 8;
      assigned.push_back(Assigned{static_cast<std::uint32_t>(cursor), base,
                                  count, prefix_index});
      min_block = std::min(min_block, base);
      max_block = std::max(max_block, base + count - 1);
      cursor += count;
    }
  }
  as_assigned_first[n] = static_cast<std::uint32_t>(assigned.size());

  // Phase D: materialize blocks + geo records in parallel. Per-block
  // decisions are stateless hashes of the block index, and each worker
  // writes a disjoint pre-sized slice, so the result is independent of
  // the partition (and TSan-clean).
  topo.begin_bulk_blocks(cursor);
  if (cursor > 0) {
    topo.geodb_mutable().prepare_span(net::Block24{min_block},
                                      net::Block24{max_block});
  }
  const auto centers = geo::world_centers();
  util::parallel_for(shards, threads, [&](std::size_t sb, std::size_t se) {
    for (std::size_t s = sb; s < se; ++s) {
      const std::uint64_t lo =
          static_cast<std::uint64_t>(s) * im.cfg.shard_size;
      const std::uint64_t hi =
          std::min<std::uint64_t>(lo + im.cfg.shard_size, n);
      for (std::uint64_t v = lo; v < hi; ++v) {
        const AsNode& node = topo.as_at(static_cast<AsId>(v));
        const auto pop_count =
            static_cast<std::uint64_t>(node.pops.size());
        for (std::uint32_t a = as_assigned_first[v];
             a < as_assigned_first[v + 1]; ++a) {
          const Assigned& pfx = assigned[a];
          for (std::uint32_t i = 0; i < pfx.count; ++i) {
            const net::Block24 block{pfx.base + i};
            const std::uint64_t h = im.key(kBlockTag, block.index());
            // Chunked PoP assignment with a 5% scatter, as in the
            // sequential generator — but keyed by block identity.
            auto pop = static_cast<std::uint16_t>(
                static_cast<std::uint64_t>(i) * pop_count / pfx.count);
            if (pop_count > 1 && to_unit(h) < 0.05)
              pop = static_cast<std::uint16_t>(mix64(h) % pop_count);
            topo.set_block(pfx.slot + i,
                           BlockInfo{block, static_cast<AsId>(v), pop,
                                     pfx.prefix_index});
            const std::uint64_t g = im.key(kGeoTag, block.index());
            if (to_unit(g) >= im.cfg.ungeolocatable_rate) {
              const Pop& at = node.pops[pop];
              const PopulationCenter& c = centers[at.center_id];
              Rng jitter_rng{hash_combine(g, 1)};
              geo::GeoRecord rec;
              rec.location = gen::jitter(at.location, c.scatter_deg,
                                         jitter_rng);
              rec.center_id = at.center_id;
              rec.country[0] = c.country[0];
              rec.country[1] = c.country[1];
              rec.country[2] = '\0';
              rec.continent = c.continent;
              topo.geodb_mutable().set(block, rec);
            }
          }
        }
      }
    }
  });
  topo.geodb_mutable().recount();
  topo.finish_bulk_blocks();
  topo.seal();
  return topo;
}

Topology generate_scale_topology(const ScaleConfig& config) {
  return ScaleGenerator{config}.generate();
}

}  // namespace vp::topology
