// AS-level entities of the simulated Internet.
//
// The catchment phenomena the paper studies are all products of
// inter-domain routing structure, so the model keeps exactly the features
// that produce them: business relationships (Gao-Rexford valley-free
// routing), multi-PoP ASes with hot-potato egress selection (intra-AS
// catchment divisions, §6.2), per-AS prefix announcements of varying size
// (Figures 7-8), and load-balanced ASes whose equal-cost paths flap
// (§6.3, Table 7).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/world.hpp"
#include "net/ipv4.hpp"

namespace vp::topology {

/// Dense index of an AS within a Topology (not the ASN).
using AsId = std::uint32_t;
inline constexpr AsId kNoAs = 0xffffffff;

/// A real-world-style autonomous system number.
struct AsNumber {
  std::uint32_t value = 0;
  constexpr auto operator<=>(const AsNumber&) const = default;
};

/// Role of an AS in the generated hierarchy.
enum class AsTier : std::uint8_t {
  kTransit,   // global tier-1-like backbone, many PoPs, peer clique
  kRegional,  // national/regional ISP, a few PoPs, has transit providers
  kStub,      // edge network, single PoP
};

std::string_view to_string(AsTier tier);

/// What the *neighbor* is to this AS on a link.
enum class Relationship : std::uint8_t {
  kCustomer,  // neighbor pays us
  kPeer,      // settlement-free
  kProvider,  // we pay neighbor
};

std::string_view to_string(Relationship rel);

/// A point of presence: where an AS attaches to the world.
struct Pop {
  std::uint16_t center_id = 0;  // index into geo::world_centers()
  geo::LatLon location;
};

/// A relationship edge to a neighboring AS, with the PoPs at which the
/// two ASes interconnect (needed for hot-potato egress distance).
struct Link {
  AsId neighbor = kNoAs;
  Relationship rel = Relationship::kPeer;
  std::uint16_t local_pop = 0;   // PoP index within this AS
  std::uint16_t remote_pop = 0;  // PoP index within the neighbor
  /// Extra BGP local-pref applied by *this* AS to routes learned over
  /// this link (traffic-engineering communities; overrides path length
  /// within the same relationship class, as real local-pref does).
  std::int8_t local_pref_bonus = 0;
  /// The local_pref_bonus the *neighbor* applies to routes it learns
  /// from this AS — i.e. the neighbor's reverse link's bonus, mirrored
  /// here by Topology::set_local_pref_bonus. Lets route propagation
  /// price an advertisement in O(1) instead of scanning the receiver's
  /// adjacency list (quadratic on dense transit ASes).
  std::int8_t reverse_local_pref_bonus = 0;
};

/// One autonomous system.
struct AsNode {
  AsNumber asn;
  AsTier tier = AsTier::kStub;
  std::string name;
  std::vector<Pop> pops;
  std::vector<Link> links;

  /// Index range of this AS's announced prefixes in
  /// Topology::announced_prefixes().
  std::uint32_t first_prefix = 0;
  std::uint32_t prefix_count = 0;

  /// Index range of this AS's /24 blocks in Topology::blocks().
  std::uint32_t first_block = 0;
  std::uint32_t block_count = 0;

  /// True for ASes with load-balanced multipath toward the anycast
  /// prefix; their blocks may flip between equally good sites between
  /// measurement rounds (the Chinanet effect, Table 7).
  bool load_balanced = false;

  /// Multiplier on the flappy-block rate for this AS (how aggressively
  /// its load balancing re-hashes flows). Chinanet's per-flow balancing
  /// makes it the paper's dominant flipper at ~13x the next AS.
  double flap_scale = 1.0;

  /// BGP multipath: when this AS holds equally good routes to different
  /// sites, it spreads traffic across them by flow hash, so different
  /// blocks of the same AS *stably* reach different sites. This — not
  /// just multi-PoP hot-potato — is why the paper finds 12.7% of ASes
  /// split across catchments (§6.2), including single-PoP ones.
  bool multipath = false;

  /// Multiplier on the base probability that hosts in this AS answer
  /// pings (ICMP-filtering cultures differ by network; e.g. the paper
  /// finds Korea heavily unmappable, Figure 4a).
  double icmp_response_scale = 1.0;
};

/// A prefix as originated in BGP by some AS.
struct AnnouncedPrefix {
  net::Prefix prefix;
  AsId origin = kNoAs;
};

/// Per-/24-block ownership record.
struct BlockInfo {
  net::Block24 block;
  AsId as_id = kNoAs;
  std::uint16_t pop = 0;            // PoP index within the owning AS
  std::uint32_t prefix_index = 0;   // index into announced_prefixes()
};

}  // namespace vp::topology
