// RIPE-Atlas-style measurement platform simulation (the paper's baseline).
//
// Atlas is the traditional, "active VP" side of Figure 1: ~10k physical
// probes query the anycast service (CHAOS TXT hostname.bind) and report
// which site answered. Its two structural properties matter for the
// comparison with Verfploeter:
//   * scale — four hundred times fewer vantage points (Table 4);
//   * skew — probes concentrate where RIPE's community is (Europe),
//     leaving South America and China nearly blind (Figures 2a, 3a).
// VP placement therefore samples population centers by `atlas_weight`
// rather than `block_weight`, and a small fraction of probes is down at
// any given time (Table 4: 455 of 9807 VPs did not respond).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bgp/routing.hpp"
#include "sim/flips.hpp"
#include "sim/responsiveness.hpp"
#include "topology/topology.hpp"

namespace vp::atlas {

struct AtlasConfig {
  std::uint64_t seed = 47;
  /// Number of probes to deploy.
  std::uint32_t vp_count = 500;
  /// Probability that a probe is unreachable during a campaign
  /// (Table 4: 455/9807 ≈ 4.6%).
  double down_rate = 0.046;
  /// Probability a probe is forced into a ping-responsive block (Atlas
  /// hosts are well-connected; calibrates the Table 4 "unique" overlap:
  /// ~77% of Atlas blocks are also seen by Verfploeter).
  double responsive_block_bias = 0.45;
};

/// One deployed Atlas probe.
struct Vp {
  std::uint32_t id = 0;
  net::Block24 block;
  topology::AsId as_id = topology::kNoAs;
  std::uint16_t pop = 0;
  geo::LatLon location;
};

/// Result of one Atlas campaign: per-VP site (kUnknownSite when the probe
/// was down or got no answer).
struct Campaign {
  std::vector<anycast::SiteId> vp_site;
  std::uint32_t considered = 0;
  std::uint32_t responding = 0;

  /// Distinct /24 blocks among responding VPs (several VPs can share one).
  std::uint32_t responding_blocks = 0;
  std::uint32_t considered_blocks = 0;

  double fraction_to(anycast::SiteId site) const;
  std::vector<std::uint64_t> per_site_counts(std::size_t site_count) const;
};

/// Performs one CHAOS TXT hostname.bind exchange against the site BGP
/// routed the VP to, over real DNS wire bytes (serialize -> parse ->
/// respond -> parse). Exposed for tests; kUnknownSite on any failure.
anycast::SiteId resolve_site_via_dns(const anycast::Deployment& deployment,
                                     anycast::SiteId routed_site,
                                     std::uint16_t query_id);

class AtlasPlatform {
 public:
  /// Deploys probes across the topology with the Atlas geographic skew.
  AtlasPlatform(const topology::Topology& topo,
                const sim::ResponsivenessModel& responsiveness,
                const AtlasConfig& config);

  std::span<const Vp> vps() const { return vps_; }

  /// Runs one campaign: each live probe asks the service which site serves
  /// it (hostname.bind) under the given routing epoch and round.
  Campaign measure(const bgp::RoutingTable& routes,
                   const sim::FlipModel& flips, std::uint32_t round) const;

 private:
  const topology::Topology* topo_;
  AtlasConfig config_;
  std::vector<Vp> vps_;
};

}  // namespace vp::atlas
