#include "atlas/atlas.hpp"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "dns/message.hpp"
#include "util/rng.hpp"

namespace vp::atlas {

AtlasPlatform::AtlasPlatform(const topology::Topology& topo,
                             const sim::ResponsivenessModel& responsiveness,
                             const AtlasConfig& config)
    : topo_(&topo), config_(config) {
  // Index blocks by population center so VPs can be placed with the Atlas
  // geographic skew. Two pools per center: ping-responsive blocks and all
  // blocks (probes in ping-dark blocks are the Table 4 "unique" VPs).
  const auto centers = geo::world_centers();
  std::vector<std::vector<std::uint32_t>> responsive_pool(centers.size());
  std::vector<std::vector<std::uint32_t>> any_pool(centers.size());
  const auto blocks = topo.blocks();
  for (std::uint32_t i = 0; i < blocks.size(); ++i) {
    const auto& node = topo.as_at(blocks[i].as_id);
    const std::uint16_t center = node.pops[blocks[i].pop].center_id;
    any_pool[center].push_back(i);
    if (responsiveness.ever_responds(blocks[i].block))
      responsive_pool[center].push_back(i);
  }

  // Cumulative Atlas weights over centers.
  std::vector<double> cumulative;
  cumulative.reserve(centers.size());
  double acc = 0.0;
  for (const auto& c : centers) {
    acc += c.atlas_weight;
    cumulative.push_back(acc);
  }

  util::Rng rng{config.seed};
  vps_.reserve(config.vp_count);
  std::uint32_t guard = 0;
  while (vps_.size() < config.vp_count &&
         guard++ < config.vp_count * 100) {
    const double x = rng.uniform() * cumulative.back();
    const auto center = static_cast<std::uint16_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), x) -
        cumulative.begin());
    const bool prefer_responsive = rng.chance(config.responsive_block_bias);
    const auto& pool = prefer_responsive && !responsive_pool[center].empty()
                           ? responsive_pool[center]
                           : any_pool[center];
    if (pool.empty()) continue;
    const std::uint32_t block_index =
        pool[rng.below(pool.size())];
    const topology::BlockInfo& info = blocks[block_index];
    Vp vp;
    vp.id = static_cast<std::uint32_t>(vps_.size());
    vp.block = info.block;
    vp.as_id = info.as_id;
    vp.pop = info.pop;
    if (const auto geo = topo.geodb().lookup(info.block)) {
      vp.location = geo->location;
    } else {
      vp.location = topo.as_at(info.as_id).pops[info.pop].location;
    }
    vps_.push_back(vp);
  }
}

namespace {

/// The hostname a site's name server reports (paper §3.1: "the name
/// hostname.bind"), e.g. site LAX -> "b1.lax.root".
std::string site_hostname(const anycast::AnycastSite& site) {
  std::string code;
  for (const char c : site.code)
    code.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  return "b1." + code + ".root";
}

}  // namespace

/// One CHAOS hostname.bind exchange over real DNS wire bytes. Returns the
/// site the VP concludes it is served by (kUnknownSite on any failure).
anycast::SiteId resolve_site_via_dns(const anycast::Deployment& deployment,
                                     anycast::SiteId routed_site,
                                     std::uint16_t query_id) {
  if (routed_site < 0) return anycast::kUnknownSite;

  // VP side: build and serialize the query.
  const dns::Message query = dns::make_hostname_bind_query(query_id);
  const auto query_bytes = query.serialize();
  if (!query_bytes) return anycast::kUnknownSite;

  // Site side: parse the query, answer with this site's hostname.
  const auto received = dns::Message::parse(*query_bytes);
  if (!received) return anycast::kUnknownSite;
  const auto& site = deployment.sites[static_cast<std::size_t>(routed_site)];
  const dns::Message response =
      dns::make_hostname_bind_response(*received, site_hostname(site));
  const auto response_bytes = response.serialize();
  if (!response_bytes) return anycast::kUnknownSite;

  // VP side again: parse the response and map hostname -> site.
  const auto parsed = dns::Message::parse(*response_bytes);
  if (!parsed || parsed->id != query_id) return anycast::kUnknownSite;
  const auto hostname = dns::parse_hostname_bind_response(*parsed);
  if (!hostname) return anycast::kUnknownSite;
  for (std::size_t s = 0; s < deployment.sites.size(); ++s) {
    if (*hostname == site_hostname(deployment.sites[s]))
      return static_cast<anycast::SiteId>(s);
  }
  return anycast::kUnknownSite;
}

Campaign AtlasPlatform::measure(const bgp::RoutingTable& routes,
                                const sim::FlipModel& flips,
                                std::uint32_t round) const {
  Campaign out;
  out.considered = static_cast<std::uint32_t>(vps_.size());
  out.vp_site.assign(vps_.size(), anycast::kUnknownSite);
  std::unordered_set<std::uint32_t> responding_blocks;
  std::unordered_set<std::uint32_t> considered_blocks;
  for (std::size_t i = 0; i < vps_.size(); ++i) {
    considered_blocks.insert(vps_[i].block.index());
    // Probe availability is per (probe, round): some are down right now.
    const std::uint64_t h = util::hash_combine(
        util::hash_combine(config_.seed, 0xa7a5),
        util::hash_combine(vps_[i].id, round));
    if (static_cast<double>(h >> 11) * 0x1.0p-53 < config_.down_rate)
      continue;
    // A CHAOS TXT hostname.bind query goes wherever BGP takes this VP's
    // network right now — identical ground truth to Verfploeter's
    // replies. The exchange uses real DNS wire bytes end to end: the VP
    // serializes the query, the site's name server answers with its
    // hostname, and the VP maps the hostname back to a site.
    const anycast::SiteId site =
        flips.site_in_round(routes, vps_[i].block, round);
    out.vp_site[i] = resolve_site_via_dns(routes.deployment(), site,
                                          static_cast<std::uint16_t>(
                                              (vps_[i].id + round) & 0xffff));
    if (site >= 0) {
      ++out.responding;
      responding_blocks.insert(vps_[i].block.index());
    }
  }
  out.responding_blocks =
      static_cast<std::uint32_t>(responding_blocks.size());
  out.considered_blocks =
      static_cast<std::uint32_t>(considered_blocks.size());
  return out;
}

double Campaign::fraction_to(anycast::SiteId site) const {
  std::uint64_t hits = 0;
  std::uint64_t total = 0;
  for (const anycast::SiteId s : vp_site) {
    if (s >= 0) {
      ++total;
      if (s == site) ++hits;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

std::vector<std::uint64_t> Campaign::per_site_counts(
    std::size_t site_count) const {
  std::vector<std::uint64_t> counts(site_count, 0);
  for (const anycast::SiteId s : vp_site)
    if (s >= 0 && static_cast<std::size_t>(s) < site_count)
      ++counts[static_cast<std::size_t>(s)];
  return counts;
}

}  // namespace vp::atlas
