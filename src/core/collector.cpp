#include "core/collector.hpp"

namespace vp::core {

void Collector::receive(std::span<const std::uint8_t> packet,
                        util::SimTime arrival) {
  ++packets_received_;
  bytes_received_ += packet.size();
  const auto parsed = net::parse_reply(packet);
  if (!parsed) {
    ++malformed_;
    return;
  }
  ReplyRecord record;
  record.site = site_;
  record.arrival = arrival;
  record.source = parsed->ip.source;
  record.original_target = parsed->probe.original_target;
  record.measurement_id = parsed->probe.measurement_id;
  record.tx_time = util::SimTime{parsed->probe.tx_time_usec};
  records_.push_back(record);
}

}  // namespace vp::core
