#include "core/campaign.hpp"

#include <algorithm>

#include "core/verfploeter.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace vp::core {

Campaign::Campaign(const Verfploeter& verfploeter,
                   const bgp::RoutingTable& routes)
    : Campaign(verfploeter.engine(), routes) {}

RoundSpec Campaign::spec_for(std::uint32_t r) const {
  RoundSpec spec;
  spec.probe = base_;
  spec.probe.measurement_id = base_.measurement_id + r;
  spec.probe.order_seed = util::hash_combine(base_.order_seed, r);
  spec.round = r;
  spec.start = util::SimTime{interval_.usec * r};
  spec.threads = threads_;
  spec.faults = faults_;
  return spec;
}

std::vector<RoundResult> Campaign::run() const {
  std::vector<RoundResult> out(rounds_);
  const unsigned in_flight =
      std::min(util::resolve_threads(concurrency_),
               std::max<std::uint32_t>(rounds_, 1));
  if (in_flight <= 1) {
    for (std::uint32_t r = 0; r < rounds_; ++r)
      out[r] = engine_->run(*routes_, spec_for(r), observer_);
    return out;
  }
  util::ThreadPool pool{in_flight};
  for (std::uint32_t r = 0; r < rounds_; ++r) {
    pool.submit([this, r, &out] {
      out[r] = engine_->run(*routes_, spec_for(r), observer_);
    });
  }
  pool.wait_idle();
  return out;
}

}  // namespace vp::core
