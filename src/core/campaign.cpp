#include "core/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

#include <memory>

#include "core/verfploeter.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/rng.hpp"
#include "util/round_arena.hpp"
#include "util/thread_pool.hpp"

namespace vp::core {

Campaign::Campaign(const Verfploeter& verfploeter,
                   const bgp::RoutingTable& routes)
    : Campaign(verfploeter.engine(), routes) {}

RoundSpec Campaign::spec_for(std::uint32_t r) const {
  RoundSpec spec;
  spec.probe = base_;
  spec.probe.measurement_id = base_.measurement_id + r;
  spec.probe.order_seed = util::hash_combine(base_.order_seed, r);
  spec.round = r;
  spec.start = util::SimTime{interval_.usec * r};
  spec.threads = threads_;
  spec.faults = faults_;
  return spec;
}

std::uint64_t Campaign::fingerprint() const {
  std::uint64_t f = 0x76706a6f75726eULL;  // "vpjourn"
  f = util::hash_combine(f, probe_fingerprint(base_));
  f = util::hash_combine(f, rounds_);
  f = util::hash_combine(f, static_cast<std::uint64_t>(interval_.usec));
  f = util::hash_combine(f, threads_);
  f = util::hash_combine(f, fault_fingerprint(faults_));
  f = util::hash_combine(f, deployment_hash_);
  return f;
}

std::vector<RoundResult> Campaign::run() const {
  return run_reported().results;
}

CampaignReport Campaign::run_reported() const {
  CampaignReport report;
  report.results.resize(rounds_);
  CampaignJournal journal;
  std::vector<bool> done(rounds_, false);
  if (!journal_path_.empty()) {
    const JournalManifest manifest{fingerprint(), rounds_};
    auto opened = journal.open(journal_path_, manifest, resume_);
    report.journal = opened.status;
    report.truncated_bytes = opened.truncated_bytes;
    if (!report.ok()) {
      report.results.clear();
      return report;
    }
    for (auto& [r, result] : opened.completed) {
      report.results[r] = std::move(result);
      done[r] = true;
      ++report.rounds_loaded;
    }
  }
  report.rounds_executed = rounds_ - report.rounds_loaded;
  auto& registry = obs::metrics();
  registry.counter("vp_campaign_rounds_resumed_total")
      .add(report.rounds_loaded);
  registry.counter("vp_campaign_rounds_executed_total")
      .add(report.rounds_executed);
  obs::Histogram& round_wall =
      registry.histogram("vp_campaign_round_wall_ms",
                         obs::latency_buckets_ms());

  // Appends are serialized; rounds completing out of order under
  // concurrency > 1 interleave their records in completion order, which
  // is fine — records carry round ids and resume takes the set.
  std::mutex journal_mutex;
  std::atomic<bool> append_ok{true};
  std::atomic<bool> cancelled{false};
  const auto cancel_requested = [&] {
    if (cancelled.load(std::memory_order_relaxed)) return true;
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      cancelled.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };
  // Cross-round arena pool: one arena per in-flight round, checked out
  // for the duration of a round and returned afterwards, so round N+1
  // starts with round N's capacities instead of cold allocations. The
  // arena is attached here — NOT in spec_for() — because it is a pure
  // performance knob: specs stay value types, and the campaign
  // fingerprint (and therefore journal resume) is unaffected.
  std::mutex arena_mutex;
  std::vector<std::unique_ptr<util::RoundArena>> arena_pool;
  const auto acquire_arena = [&] {
    std::lock_guard lock{arena_mutex};
    if (arena_pool.empty()) return std::make_unique<util::RoundArena>();
    auto arena = std::move(arena_pool.back());
    arena_pool.pop_back();
    return arena;
  };
  const auto release_arena = [&](std::unique_ptr<util::RoundArena> arena) {
    std::lock_guard lock{arena_mutex};
    arena_pool.push_back(std::move(arena));
  };
  const auto run_one = [&](std::uint32_t r) {
    // Wall time of the round INCLUDING its journal append, as the
    // campaign experiences it (the engine's vp_engine_round_ms excludes
    // the append; the spread between the two is the durability tax).
    obs::Span span{&round_wall};
    auto arena = acquire_arena();
    RoundSpec spec = spec_for(r);
    spec.arena = arena.get();
    RoundResult result = engine_->run(*routes_, spec, observer_);
    release_arena(std::move(arena));
    if (journal.is_open()) {
      std::lock_guard lock{journal_mutex};
      if (!journal.append_round(r, result)) append_ok = false;
    }
    report.results[r] = std::move(result);
  };

  const unsigned in_flight =
      std::min(util::resolve_threads(concurrency_),
               std::max<std::uint32_t>(rounds_, 1));
  // Cancellation is checked before each round starts (including inside
  // the pool tasks): rounds in flight finish and journal normally, rounds
  // not yet started are simply skipped — the journal stays a resumable
  // prefix of the campaign.
  if (in_flight <= 1) {
    for (std::uint32_t r = 0; r < rounds_ && !cancel_requested(); ++r)
      if (!done[r]) run_one(r);
  } else {
    util::ThreadPool pool{in_flight};
    for (std::uint32_t r = 0; r < rounds_; ++r)
      if (!done[r])
        pool.submit([&run_one, &cancel_requested, r] {
          if (!cancel_requested()) run_one(r);
        });
    pool.wait_idle();
  }
  report.interrupted = cancelled.load(std::memory_order_relaxed);
  if (!append_ok) report.journal = JournalStatus::kIoError;
  return report;
}

}  // namespace vp::core
