// Per-site reply collection (paper §3.1, "response collection systems").
//
// Each anycast site runs a collector that captures raw packets addressed to
// the measurement address, parses them, and keeps a compact record per
// reply. Records from all sites are later shipped to a central point and
// merged ("we copy all responses to a central site for analysis").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "anycast/deployment.hpp"
#include "net/packet.hpp"
#include "util/clock.hpp"

namespace vp::core {

/// One parsed, validated reply as recorded at a site.
struct ReplyRecord {
  anycast::SiteId site = anycast::kUnknownSite;
  util::SimTime arrival;
  net::Ipv4Address source;           // who the reply came from
  net::Ipv4Address original_target;  // who we actually probed (payload)
  std::uint32_t measurement_id = 0;
  util::SimTime tx_time;
};

class Collector {
 public:
  explicit Collector(anycast::SiteId site) : site_(site) {}

  anycast::SiteId site() const { return site_; }

  /// Feeds one captured packet. Malformed or non-probe packets are
  /// counted and dropped (a real capture sees plenty of stray traffic).
  void receive(std::span<const std::uint8_t> packet, util::SimTime arrival);

  std::span<const ReplyRecord> records() const { return records_; }
  std::uint64_t malformed() const { return malformed_; }
  /// Receive-side tallies for the observability layer: every captured
  /// packet (valid or not) and its wire bytes. The engine flushes these
  /// into per-site registry counters at merge time so the hot capture
  /// path never touches shared state.
  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

  void clear() {
    records_.clear();
    malformed_ = 0;
    packets_received_ = 0;
    bytes_received_ = 0;
  }

 private:
  anycast::SiteId site_;
  std::vector<ReplyRecord> records_;
  std::uint64_t malformed_ = 0;
  std::uint64_t packets_received_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace vp::core
