// Per-site reply collection (paper §3.1, "response collection systems").
//
// Each anycast site runs a collector that captures raw packets addressed to
// the measurement address, parses them, and keeps a compact record per
// reply. Records from all sites are later shipped to a central point and
// merged ("we copy all responses to a central site for analysis").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "anycast/deployment.hpp"
#include "net/packet.hpp"
#include "util/clock.hpp"

namespace vp::core {

/// One parsed, validated reply as recorded at a site.
struct ReplyRecord {
  anycast::SiteId site = anycast::kUnknownSite;
  util::SimTime arrival;
  net::Ipv4Address source;           // who the reply came from
  net::Ipv4Address original_target;  // who we actually probed (payload)
  std::uint32_t measurement_id = 0;
  util::SimTime tx_time;
};

/// Structure-of-arrays reply accumulator for the probe engine's hot path:
/// one per (shard, site), columns pre-sized from the shard's block count
/// and reused across rounds via the engine's arena, so steady-state
/// appends never allocate and each column streams sequentially through
/// cache (an AoS ReplyRecord push touches a 48-byte stride per reply).
/// `key` is the probe's GLOBAL index in the round's probe order and `seq`
/// the per-probe delivery counter, in append order across attempts —
/// together they let the merge reproduce the legacy shard-concat order
/// with one comparison-based sort (see probe_engine.cpp).
struct ReplyBuffer {
  std::vector<std::int64_t> arrival_usec;
  std::vector<std::int64_t> tx_usec;
  std::vector<std::uint64_t> key;
  std::vector<std::uint32_t> source;
  std::vector<std::uint32_t> measurement_id;
  std::vector<std::uint16_t> seq;
  std::uint64_t malformed = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t bytes_received = 0;

  std::size_t size() const { return arrival_usec.size(); }

  void push(std::int64_t arrival, std::int64_t tx, std::uint64_t probe_key,
            std::uint32_t src, std::uint32_t mid, std::uint16_t delivery_seq) {
    arrival_usec.push_back(arrival);
    tx_usec.push_back(tx);
    key.push_back(probe_key);
    source.push_back(src);
    measurement_id.push_back(mid);
    seq.push_back(delivery_seq);
  }

  void clear() {
    arrival_usec.clear();
    tx_usec.clear();
    key.clear();
    source.clear();
    measurement_id.clear();
    seq.clear();
    malformed = 0;
    packets_received = 0;
    bytes_received = 0;
  }

  void reserve(std::size_t n) {
    arrival_usec.reserve(n);
    tx_usec.reserve(n);
    key.reserve(n);
    source.reserve(n);
    measurement_id.reserve(n);
    seq.reserve(n);
  }

  std::size_t capacity() const { return arrival_usec.capacity(); }
};

class Collector {
 public:
  explicit Collector(anycast::SiteId site) : site_(site) {}

  anycast::SiteId site() const { return site_; }

  /// Feeds one captured packet. Malformed or non-probe packets are
  /// counted and dropped (a real capture sees plenty of stray traffic).
  void receive(std::span<const std::uint8_t> packet, util::SimTime arrival);

  std::span<const ReplyRecord> records() const { return records_; }
  std::uint64_t malformed() const { return malformed_; }
  /// Receive-side tallies for the observability layer: every captured
  /// packet (valid or not) and its wire bytes. The engine flushes these
  /// into per-site registry counters at merge time so the hot capture
  /// path never touches shared state.
  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

  void clear() {
    records_.clear();
    malformed_ = 0;
    packets_received_ = 0;
    bytes_received_ = 0;
  }

 private:
  anycast::SiteId site_;
  std::vector<ReplyRecord> records_;
  std::uint64_t malformed_ = 0;
  std::uint64_t packets_received_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace vp::core
