#include "core/verfploeter.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/rng.hpp"

namespace vp::core {

RoundResult Verfploeter::run_round(const bgp::RoutingTable& routes,
                                   const ProbeConfig& config,
                                   std::uint32_t round,
                                   util::SimTime start) const {
  const anycast::Deployment& deployment = routes.deployment();
  const std::size_t site_count = deployment.sites.size();

  std::vector<Collector> collectors;
  collectors.reserve(site_count);
  for (std::size_t s = 0; s < site_count; ++s)
    collectors.emplace_back(static_cast<anycast::SiteId>(s));

  RoundResult result;
  result.started = start;

  // --- probe phase -------------------------------------------------------
  const auto order = hitlist_->probe_order(
      util::hash_combine(config.order_seed, round));
  const util::SimTime gap =
      util::SimTime::from_seconds(1.0 / config.rate_pps);
  util::SimTime now = start;
  std::unordered_set<std::uint32_t> probed_addresses;
  std::unordered_set<std::uint32_t> probed_blocks;
  probed_addresses.reserve(order.size() * 2);

  for (const std::uint32_t index : order) {
    const hitlist::Entry& entry = hitlist_->entries()[index];
    const auto targets = hitlist_->targets_for(
        entry, config.extra_targets_per_block,
        util::hash_combine(config.order_seed, 0x7a6e));
    for (const net::Ipv4Address target : targets) {
      net::ProbePayload payload;
      payload.measurement_id = config.measurement_id;
      payload.tx_time_usec = now.usec;
      payload.original_target = target;
      const net::PacketBytes probe = net::build_echo_request(
          deployment.measurement_address, target,
          static_cast<std::uint16_t>(config.measurement_id & 0xffff),
          static_cast<std::uint16_t>(result.map.probes_sent & 0xffff),
          payload);
      probed_addresses.insert(target.value());
      probed_blocks.insert(entry.block.index());
      ++result.map.probes_sent;
      for (sim::Delivery& delivery :
           internet_->probe(routes, probe.data, now, round)) {
        collectors[static_cast<std::size_t>(delivery.site)].receive(
            delivery.packet.data, delivery.arrival);
      }
      now += gap;
    }
  }
  result.probing_duration = now - start;
  result.map.blocks_probed = probed_blocks.size();
  result.map.measurement_id = config.measurement_id;

  // --- central cleaning (paper §4) ----------------------------------------
  std::vector<ReplyRecord> merged;
  result.raw_replies_per_site.assign(site_count, 0);
  CleaningStats& stats = result.map.cleaning;
  for (const Collector& collector : collectors) {
    stats.malformed += collector.malformed();
    result.raw_replies_per_site[static_cast<std::size_t>(
        collector.site())] += collector.records().size();
    merged.insert(merged.end(), collector.records().begin(),
                  collector.records().end());
  }
  stats.raw_replies = merged.size() + stats.malformed;
  // First reply wins: order by arrival (stable for determinism).
  std::stable_sort(merged.begin(), merged.end(),
                   [](const ReplyRecord& a, const ReplyRecord& b) {
                     return a.arrival < b.arrival;
                   });
  const util::SimTime cutoff =
      start + util::SimTime::from_minutes(config.late_cutoff_minutes);
  for (const ReplyRecord& record : merged) {
    if (record.measurement_id != config.measurement_id) {
      ++stats.wrong_id;
      continue;
    }
    if (record.arrival > cutoff) {
      ++stats.late;
      continue;
    }
    if (probed_addresses.find(record.source.value()) ==
        probed_addresses.end()) {
      ++stats.unsolicited;
      continue;
    }
    const net::Block24 block = net::Block24::containing(record.source);
    if (result.map.contains(block)) {
      ++stats.duplicates;
      continue;
    }
    result.map.set(block, record.site);
    result.rtt_ms.emplace(
        block, static_cast<float>((record.arrival - record.tx_time).usec) /
                   1000.0f);
    ++stats.kept;
  }
  return result;
}

std::vector<RoundResult> Verfploeter::campaign(
    const bgp::RoutingTable& routes, const ProbeConfig& base,
    std::uint32_t rounds, util::SimTime interval) const {
  std::vector<RoundResult> out;
  out.reserve(rounds);
  for (std::uint32_t r = 0; r < rounds; ++r) {
    ProbeConfig config = base;
    config.measurement_id = base.measurement_id + r;
    config.order_seed = util::hash_combine(base.order_seed, r);
    out.push_back(run_round(routes, config, r,
                            util::SimTime{interval.usec * r}));
  }
  return out;
}

}  // namespace vp::core
