#include "core/verfploeter.hpp"

#include "core/campaign.hpp"

namespace vp::core {

// Deprecated shims: the old positional surface, expressed on the new one.

RoundResult Verfploeter::run_round(const bgp::RoutingTable& routes,
                                   const ProbeConfig& config,
                                   std::uint32_t round,
                                   util::SimTime start) const {
  RoundSpec spec;
  spec.probe = config;
  spec.round = round;
  spec.start = start;
  return engine_.run(routes, spec);
}

std::vector<RoundResult> Verfploeter::campaign(const bgp::RoutingTable& routes,
                                               const ProbeConfig& base,
                                               std::uint32_t rounds,
                                               util::SimTime interval) const {
  return Campaign{engine_, routes}
      .probe(base)
      .rounds(rounds)
      .interval(interval)
      .run();
}

}  // namespace vp::core
