// Verfploeter: the paper's primary contribution (§3).
//
// Orchestrates one measurement round end-to-end:
//   1. the prober walks the hitlist in pseudorandom order, rate-limited,
//      emitting ICMP Echo Requests sourced from the measurement address
//      inside the anycast service prefix;
//   2. the (simulated) Internet routes each reply to the anycast site
//      serving the responder's catchment;
//   3. per-site collectors parse and record replies;
//   4. the central cleaner merges records, removing duplicates, replies
//      from never-probed addresses, stale-round replies, and late replies
//      (§4), and emits the catchment map: /24 block -> site.
//
// Crucially, this pipeline never consults the routing table: catchments
// are *discovered* from which collector received each reply, exactly as
// the real system must.
//
// This class is a thin facade over core/probe_engine.hpp (the sharded
// round runner); multi-round policy lives in core/campaign.hpp. A round
// is described with a RoundSpec and run with run().
#pragma once

#include "bgp/routing.hpp"
#include "core/probe_engine.hpp"
#include "core/round.hpp"
#include "hitlist/hitlist.hpp"
#include "sim/internet.hpp"

namespace vp::core {

class Verfploeter {
 public:
  Verfploeter(const sim::InternetSim& internet, const hitlist::Hitlist& hitlist)
      : engine_(internet, hitlist) {}

  /// Runs the round described by `spec` against the current BGP state.
  /// `spec.threads` probe workers; bit-identical result for any value.
  RoundResult run(const bgp::RoutingTable& routes, const RoundSpec& spec,
                  RoundObserver* observer = nullptr) const {
    return engine_.run(routes, spec, observer);
  }

  /// The underlying sharded engine (what Campaign drives directly).
  const ProbeEngine& engine() const { return engine_; }

 private:
  ProbeEngine engine_;
};

}  // namespace vp::core
