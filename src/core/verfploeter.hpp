// Verfploeter: the paper's primary contribution (§3).
//
// Orchestrates one measurement round end-to-end:
//   1. the prober walks the hitlist in pseudorandom order, rate-limited,
//      emitting ICMP Echo Requests sourced from the measurement address
//      inside the anycast service prefix;
//   2. the (simulated) Internet routes each reply to the anycast site
//      serving the responder's catchment;
//   3. per-site collectors parse and record replies;
//   4. the central cleaner merges records, removing duplicates, replies
//      from never-probed addresses, stale-round replies, and late replies
//      (§4), and emits the catchment map: /24 block -> site.
//
// Crucially, this pipeline never consults the routing table: catchments
// are *discovered* from which collector received each reply, exactly as
// the real system must.
#pragma once

#include <cstdint>
#include <vector>
#include <unordered_map>

#include "bgp/routing.hpp"
#include "core/catchment.hpp"
#include "core/collector.hpp"
#include "hitlist/hitlist.hpp"
#include "sim/internet.hpp"

namespace vp::core {

struct ProbeConfig {
  std::uint32_t measurement_id = 1;
  /// Probe transmission rate (paper §4.2: 10k/s; §3.1 mentions ~6k/s).
  double rate_pps = 10'000.0;
  /// Replies later than this after measurement start are discarded (§4).
  double late_cutoff_minutes = 15.0;
  /// Seed for the pseudorandom probe order.
  std::uint64_t order_seed = 1;
  /// Extra addresses probed per block (0 = the paper's single-probe
  /// design; >0 = the Trinocular-style ablation).
  int extra_targets_per_block = 0;
};

/// Outcome of one round: the cleaned catchment map plus the raw per-site
/// reply volumes (used by the traffic-cost accounting) and the measured
/// round-trip time per mapped block (paper §7 suggests using these RTTs
/// to decide where new anycast sites would help; see analysis/latency).
struct RoundResult {
  CatchmentMap map;
  std::vector<std::uint64_t> raw_replies_per_site;
  std::unordered_map<net::Block24, float> rtt_ms;  // kept replies only
  util::SimTime started;
  util::SimTime probing_duration;  // time to emit all probes at rate_pps
};

class Verfploeter {
 public:
  Verfploeter(const sim::InternetSim& internet, const hitlist::Hitlist& hitlist)
      : internet_(&internet), hitlist_(&hitlist) {}

  /// Runs one measurement round against the current BGP state. `round`
  /// indexes the simulation's stochastic processes (responsiveness churn,
  /// flaps); `start` stamps probe transmit times.
  RoundResult run_round(const bgp::RoutingTable& routes,
                        const ProbeConfig& config, std::uint32_t round,
                        util::SimTime start = {}) const;

  /// Runs `rounds` rounds spaced `interval` apart (the paper's 24-hour,
  /// 96-round campaign uses interval = 15 min). Each round gets a fresh
  /// measurement id and probe order.
  std::vector<RoundResult> campaign(const bgp::RoutingTable& routes,
                                    const ProbeConfig& base,
                                    std::uint32_t rounds,
                                    util::SimTime interval) const;

 private:
  const sim::InternetSim* internet_;
  const hitlist::Hitlist* hitlist_;
};

}  // namespace vp::core
