// The round API: value types describing one measurement round and the
// observer interface for watching it run.
//
// A round is fully specified by a RoundSpec — probe configuration, the
// round index (which drives every stochastic process in the simulator),
// the virtual start time, and how many worker shards to probe with. Two
// runs of the same spec produce bit-identical results for ANY thread
// count; see core/probe_engine.hpp for how the merge guarantees this.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/catchment.hpp"
#include "net/ipv4.hpp"
#include "sim/fault_injector.hpp"
#include "util/clock.hpp"

namespace vp::util {
class RoundArena;
}

namespace vp::core {

struct ProbeConfig {
  std::uint32_t measurement_id = 1;
  /// Probe transmission rate (paper §4.2: 10k/s; §3.1 mentions ~6k/s).
  double rate_pps = 10'000.0;
  /// Replies later than this after measurement start are discarded (§4).
  double late_cutoff_minutes = 15.0;
  /// Seed for the pseudorandom probe order.
  std::uint64_t order_seed = 1;
  /// Extra addresses probed per block (0 = the paper's single-probe
  /// design; >0 = the Trinocular-style ablation).
  int extra_targets_per_block = 0;
  /// Retry attempts per probe that saw no reply within the timeout
  /// (0 = the paper's fire-once design; §3.1 leaves retries as future
  /// work — we implement them). Retries never shift other probes' tx
  /// times: attempt a of probe k goes out at
  ///   start + k/rate + a*timeout + backoff*(factor^0 + ... + factor^(a-1)),
  /// a pure function of (k, a), which is what keeps the sharded merge
  /// bit-identical for any thread count.
  int max_retries = 0;
  /// How long the prober waits for a reply before declaring an attempt
  /// silent and (if attempts remain) retrying.
  double probe_timeout_ms = 1'000.0;
  /// Base backoff added on top of the timeout before each retry.
  double retry_backoff_ms = 250.0;
  /// Exponential growth of the backoff across successive retries.
  double retry_backoff_factor = 2.0;
};

/// Everything that defines one measurement round.
struct RoundSpec {
  ProbeConfig probe;
  /// Indexes the simulation's stochastic processes (responsiveness churn,
  /// catchment flips).
  std::uint32_t round = 0;
  /// Stamps probe transmit times.
  util::SimTime start{};
  /// Probe-phase worker shards: 1 = serial, 0 = one per hardware thread.
  /// Never affects the result, only wall-clock time.
  unsigned threads = 1;
  /// Optional fault plan layered over the simulated Internet (must
  /// outlive the run). Null or a disabled plan leaves every packet and
  /// timestamp byte-identical to the fault-free engine.
  const sim::FaultInjector* faults = nullptr;
  /// Block-range tile size in probe-order entries: each shard walks its
  /// chunk tile by tile so the resolver/geo/responsiveness slices a tile
  /// touches fit in LLC. 0 = auto (the engine's tuned default); 1 =
  /// degenerate per-entry tiles; UINT32_MAX = one tile per shard.
  /// NEVER affects results — merged output is bit-identical for any
  /// value (tests sweep it) — so it stays out of Campaign fingerprints.
  std::uint32_t tile_entries = 0;
  /// Optional cross-round scratch arena (must outlive the run). The
  /// engine keeps its probe-order, reply-buffer and per-shard workspaces
  /// here so round N+1 reuses round N's allocations; null means the run
  /// allocates privately. Purely a performance knob: results are
  /// bit-identical with or without it, but an arena must not be shared
  /// by two CONCURRENT runs.
  util::RoundArena* arena = nullptr;
};

/// Outcome of one round: the cleaned catchment map plus the raw per-site
/// reply volumes (used by the traffic-cost accounting) and the measured
/// round-trip time per mapped block (paper §7 suggests using these RTTs
/// to decide where new anycast sites would help; see analysis/latency).
struct RoundResult {
  CatchmentMap map;
  std::vector<std::uint64_t> raw_replies_per_site;
  std::unordered_map<net::Block24, float> rtt_ms;  // kept replies only
  util::SimTime started;
  util::SimTime probing_duration;  // time to emit all probes at rate_pps
  /// Injected-fault and retry accounting; all-zero when the round ran
  /// without a fault plan and without retries.
  sim::FaultStats faults;
};

/// Wall-clock timing and throughput of one finished round, as measured
/// by the engine against the real (steady) clock. This is observability
/// output ONLY: wall times are inherently nondeterministic, so nothing
/// in RoundMetrics ever feeds back into probe decisions or results —
/// catchments stay bit-identical whether anyone looks at this or not.
struct RoundMetrics {
  double wall_ms = 0.0;         ///< whole run(): plan + probe + merge + clean
  double probe_phase_ms = 0.0;  ///< worker shards running
  std::uint64_t probes_sent = 0;    ///< incl. retries
  std::uint64_t replies_raw = 0;    ///< before cleaning
  std::uint64_t replies_kept = 0;   ///< after cleaning
  double probes_per_sec = 0.0;      ///< probes_sent / wall time
  double rtt_p50_ms = 0.0;          ///< median RTT over kept replies
  double rtt_p95_ms = 0.0;
};

/// Progress and accounting callbacks from a running round. Default
/// implementations do nothing, so observers override only what they need.
///
/// Threading contract: within one run, on_probe_progress may be called
/// from any probe worker but calls are serialized by the engine;
/// on_replies_collected and on_round_complete come from the coordinating
/// thread after the workers joined. Distinct *concurrent* rounds (a
/// Campaign with concurrency > 1) each call the observer independently —
/// an observer shared across rounds must synchronize its own state.
class RoundObserver {
 public:
  virtual ~RoundObserver() = default;

  /// Probe-phase progress: `sent` of `total` probes emitted so far.
  /// Throttled (roughly every 64k probes per worker, plus once at the
  /// end), monotonic per round.
  virtual void on_probe_progress(const RoundSpec& spec, std::uint64_t sent,
                                 std::uint64_t total) {
    (void)spec, (void)sent, (void)total;
  }

  /// All collectors merged: raw reply counts per site, before cleaning.
  virtual void on_replies_collected(
      const RoundSpec& spec, const std::vector<std::uint64_t>& per_site) {
    (void)spec, (void)per_site;
  }

  /// Fault and retry accounting for the probe phase (all-zero when the
  /// round ran clean). Called once per round, after the workers joined
  /// and before on_replies_collected.
  virtual void on_fault_stats(const RoundSpec& spec,
                              const sim::FaultStats& faults) {
    (void)spec, (void)faults;
  }

  /// The round is fully cleaned; `result.map.cleaning` holds the stats.
  virtual void on_round_complete(const RoundSpec& spec,
                                 const RoundResult& result) {
    (void)spec, (void)result;
  }

  /// Wall-clock timing/throughput for the finished round — the live
  /// one-line progress report vpctl prints. Called last, after
  /// on_round_complete, from the coordinating thread. Values are real
  /// time and therefore nondeterministic; results never depend on them.
  virtual void on_metrics(const RoundSpec& spec, const RoundMetrics& metrics) {
    (void)spec, (void)metrics;
  }
};

}  // namespace vp::core
