// CampaignJournal: an append-only, CRC-framed write-ahead log of
// completed campaign rounds, so a multi-day run (the paper's 24-hour,
// 96-round campaign, §4.2) survives a crash, OOM, or operator kill at
// any instruction and resumes bit-identically.
//
// Why this works at all: every round is a pure function of its RoundSpec
// (core/round.hpp), so a journaled result IS the result a re-run would
// produce. The journal therefore only has to guarantee two things —
// records are either durably complete or detectably absent, and a
// journal is never replayed against a different campaign configuration.
//
// File format (little-endian):
//
//   frame   := payload_len:u32  crc32(payload):u32  payload
//   payload := type:u8 body
//   file    := manifest-frame round-frame*
//
// The manifest body carries a format version and a 64-bit fingerprint of
// everything that determines results: probe config (order seed, rate,
// cutoff, retries, ...), round count, interval, threads, the fault plan,
// and a deployment hash. Round bodies carry the round id plus the full
// serialized RoundResult — rounds complete out of order under
// Campaign::concurrency(), so resume takes the *set* of journaled round
// ids, never a high-water mark.
//
// Reader semantics mirror classic WAL recovery:
//   - a torn tail (file ends mid-frame — the signature of a crash during
//     append) is truncated and the campaign re-runs that round;
//   - a complete frame whose CRC fails (bit rot, manual edit) refuses the
//     whole journal: silently resuming past corruption could split one
//     campaign's artifacts across two realities;
//   - a manifest fingerprint mismatch refuses resume: the journal belongs
//     to a different campaign.
//
// Appends are write()+fsync of one frame; the frame never spans files and
// rename() is not needed because append-only frames are self-delimiting.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/round.hpp"

namespace vp::core {

/// Identity of the campaign a journal belongs to. `fingerprint` must
/// cover every input that changes results (see campaign_fingerprint).
struct JournalManifest {
  std::uint64_t fingerprint = 0;
  std::uint32_t rounds = 0;
};

/// Outcome of opening a journal (and, by extension, of a journaled
/// campaign run — CampaignReport carries one of these).
enum class JournalStatus {
  kDisabled,             ///< no journal path configured
  kFresh,                ///< new journal started (no usable prior state)
  kResumed,              ///< existing journal accepted; completed rounds loaded
  kFingerprintMismatch,  ///< journal belongs to a different campaign config
  kCorrupt,              ///< a complete record failed its checksum
  kIoError,              ///< open/write/fsync failure
};

/// Human-readable status name for logs and CLI messages.
const char* to_string(JournalStatus status);

class CampaignJournal {
 public:
  struct OpenResult {
    JournalStatus status = JournalStatus::kIoError;
    /// Fully-journaled rounds by id (empty unless status == kResumed).
    std::map<std::uint32_t, RoundResult> completed;
    /// Bytes of torn tail discarded during recovery (kResumed only).
    std::uint64_t truncated_bytes = 0;
  };

  CampaignJournal() = default;
  ~CampaignJournal() { close(); }
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  /// Opens `path` for appending. With `resume`, an existing file is
  /// validated against `manifest`: matching journals return kResumed with
  /// their completed rounds (torn tail truncated in place); mismatched or
  /// corrupt journals refuse — the file is left untouched and the journal
  /// stays closed. Without `resume`, the journal is recreated with a
  /// fresh manifest (kFresh).
  ///
  /// Empty-file contract: a 0-byte journal resumes exactly like a missing
  /// one — kFresh, no rounds loaded, file recreated. An empty file is the
  /// fingerprint of a crash before the manifest write (cut position 0 of
  /// the kill-point harness), so there is by construction no state to
  /// validate against and nothing to refuse; journal_test pins this.
  OpenResult open(const std::string& path, const JournalManifest& manifest,
                  bool resume);

  /// Appends one completed round and fsyncs. Safe to call from the thread
  /// that finished the round as long as callers serialize (Campaign holds
  /// a mutex). Returns false on I/O failure; the journal closes itself so
  /// later appends fail fast rather than writing past a hole.
  bool append_round(std::uint32_t round, const RoundResult& result);

  bool is_open() const { return fd_ >= 0; }
  void close();

  /// Serialization, exposed so tests can build frames to mutilate.
  static std::string encode_manifest(const JournalManifest& manifest);
  static std::string encode_round(std::uint32_t round,
                                  const RoundResult& result);
  /// Wraps a payload in the length+CRC frame.
  static std::string frame(std::string_view payload);

 private:
  int fd_ = -1;
};

/// 64-bit fingerprint of a probe configuration (every field affects
/// results; floats hash by bit pattern).
std::uint64_t probe_fingerprint(const ProbeConfig& probe);

/// 64-bit fingerprint of a fault plan (0 for "no injector").
std::uint64_t fault_fingerprint(const sim::FaultInjector* faults);

}  // namespace vp::core
