// The sharded probe engine: runs one measurement round across N worker
// threads and merges their shards into a result that is bit-identical to
// the serial walk.
//
// Why this is safe to parallelize: every stochastic decision on the probe
// path — responsiveness, duplicates, aliases, flips, RTT jitter — is a
// pure function of (block, round, seed) (see sim/), and the hitlist's
// pseudorandom order plus per-probe timestamps and ICMP sequence numbers
// are pure functions of the probe's *global index* in that order. So the
// engine:
//
//   1. materializes the round's probe order and prefix-sums the per-entry
//      target counts, giving every probe its global index up front;
//   2. splits the order into N *contiguous* chunks of roughly equal probe
//      count; each worker probes its chunk with private per-site
//      collectors and private probed-address/block sets, stamping tx
//      times and sequence numbers from the global index;
//   3. merges: per site, shard record lists are concatenated in shard
//      order — because chunks are contiguous in emission order, this
//      reproduces the serial collector's receive order exactly — then the
//      usual stable sort by arrival and first-reply-wins cleaning pass
//      run unchanged (paper §4).
//
// Equal-arrival ties therefore resolve identically for any thread count,
// and the CatchmentMap, CleaningStats, and per-block RTTs match the
// one-thread run bit for bit.
//
// Faults and retries preserve the guarantee: the fault plan
// (sim/fault_injector.hpp) is const-pure like the rest of sim/, retry
// attempt times are pure functions of (global probe index, attempt), and
// fault counters are per-shard sums — so a faulty, retrying round is
// still bit-identical for any thread count.
#pragma once

#include "bgp/routing.hpp"
#include "core/collector.hpp"
#include "core/round.hpp"
#include "hitlist/hitlist.hpp"
#include "sim/internet.hpp"

namespace vp::core {

class ProbeEngine {
 public:
  ProbeEngine(const sim::InternetSim& internet,
              const hitlist::Hitlist& hitlist)
      : internet_(&internet), hitlist_(&hitlist) {}

  /// Runs one round against the current BGP state with spec.threads
  /// probe workers. Safe to call concurrently from multiple threads
  /// (e.g. overlapping rounds of a campaign): the engine holds no
  /// mutable state and the sim layer is const-pure.
  RoundResult run(const bgp::RoutingTable& routes, const RoundSpec& spec,
                  RoundObserver* observer = nullptr) const;

 private:
  const sim::InternetSim* internet_;
  const hitlist::Hitlist* hitlist_;
};

}  // namespace vp::core
