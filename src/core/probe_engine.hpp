// The sharded probe engine: runs one measurement round across N worker
// threads and merges their shards into a result that is bit-identical to
// the serial walk.
//
// Why this is safe to parallelize: every stochastic decision on the probe
// path — responsiveness, duplicates, aliases, flips, RTT jitter — is a
// pure function of (block, round, seed) (see sim/), and the hitlist's
// pseudorandom order plus per-probe timestamps and ICMP sequence numbers
// are pure functions of the probe's *global index* in that order. So the
// engine:
//
//   1. materializes the round's probe order and (in multi-target mode)
//      prefix-sums the per-entry target counts, giving every probe its
//      global index up front;
//   2. splits the order into N *contiguous* chunks of roughly equal probe
//      count, then each worker walks its chunk in block-range TILES: a
//      counting sort groups the chunk's positions by entry-index range,
//      so the resolver/geo/responsiveness rows a tile touches stay
//      cache-resident while its probes run. Tx times and sequence numbers
//      are pure functions of the global index, so the walk order cannot
//      change a single packet. Replies accumulate in per-(shard, site)
//      structure-of-arrays buffers tagged with (global probe index,
//      per-probe delivery seq);
//   3. merges: all shard rows are gathered and sorted by the strict total
//      order (arrival, site, probe index, seq). This reproduces the
//      legacy pipeline — site-major shard-order concatenation followed by
//      a stable sort on arrival — exactly: within one (site, shard) list
//      records were appended in ascending (probe index, seq), and shards
//      own ascending disjoint probe-index ranges, so the legacy
//      equal-arrival tie order WAS (site, probe index, seq). The
//      first-reply-wins cleaning pass then runs unchanged (paper §4).
//
// Equal-arrival ties therefore resolve identically for any thread count
// AND any tile size, and the CatchmentMap, CleaningStats, and per-block
// RTTs match the one-thread run bit for bit.
//
// Faults and retries preserve the guarantee: the fault plan
// (sim/fault_injector.hpp) is const-pure like the rest of sim/, retry
// attempt times are pure functions of (global probe index, attempt), and
// fault counters are per-shard sums — so a faulty, retrying round is
// still bit-identical for any thread count.
#pragma once

#include "bgp/routing.hpp"
#include "core/collector.hpp"
#include "core/round.hpp"
#include "hitlist/hitlist.hpp"
#include "sim/internet.hpp"

namespace vp::core {

class ProbeEngine {
 public:
  ProbeEngine(const sim::InternetSim& internet,
              const hitlist::Hitlist& hitlist)
      : internet_(&internet), hitlist_(&hitlist) {}

  /// Runs one round against the current BGP state with spec.threads
  /// probe workers. Safe to call concurrently from multiple threads
  /// (e.g. overlapping rounds of a campaign): the engine holds no
  /// mutable state and the sim layer is const-pure.
  RoundResult run(const bgp::RoutingTable& routes, const RoundSpec& spec,
                  RoundObserver* observer = nullptr) const;

 private:
  const sim::InternetSim* internet_;
  const hitlist::Hitlist* hitlist_;
};

}  // namespace vp::core
