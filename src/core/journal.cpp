#include "core/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

#include <atomic>
#include <bit>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>

#include "util/atomic_file.hpp"
#include "util/rng.hpp"

namespace vp::core {

namespace {

constexpr std::uint8_t kManifestType = 1;
constexpr std::uint8_t kRoundType = 2;
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kFrameHeader = 8;  // payload_len:u32 + crc:u32

// ---- little-endian encode helpers -------------------------------------

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

// Chunked appends, not per-byte push_back: a round record is ~0.4 MB of
// these and the encode shows up in the journaling overhead bench.

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.append(b, sizeof b);
}

void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.append(b, sizeof b);
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f32(std::string& out, float v) {
  put_u32(out, std::bit_cast<std::uint32_t>(v));
}

// ---- bounds-checked decode cursor -------------------------------------

struct Cursor {
  const unsigned char* p;
  std::size_t left;
  bool ok = true;

  explicit Cursor(std::string_view bytes)
      : p(reinterpret_cast<const unsigned char*>(bytes.data())),
        left(bytes.size()) {}

  bool take(std::size_t n) {
    if (!ok || left < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!take(1)) return 0;
    const std::uint8_t v = p[0];
    ++p, --left;
    return v;
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
    p += 4, left -= 4;
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
    p += 8, left -= 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32() { return std::bit_cast<float>(u32()); }
};

// ---- RoundResult <-> bytes --------------------------------------------

void encode_result(std::string& out, const RoundResult& result) {
  put_u32(out, result.map.measurement_id);
  put_u64(out, result.map.probes_sent);
  put_u64(out, result.map.blocks_probed);
  const CleaningStats& c = result.map.cleaning;
  for (const std::uint64_t v : {c.raw_replies, c.malformed, c.wrong_id,
                                c.unsolicited, c.duplicates, c.late, c.kept})
    put_u64(out, v);
  put_i64(out, result.started.usec);
  put_i64(out, result.probing_duration.usec);
  const sim::FaultStats& f = result.faults;
  for (const std::uint64_t v :
       {f.probes_lost, f.replies_generated, f.replies_lost, f.rate_limited,
        f.outage_drops, f.withdrawn, f.diverted, f.delayed, f.retries,
        f.recovered})
    put_u64(out, v);
  put_u32(out, static_cast<std::uint32_t>(result.raw_replies_per_site.size()));
  for (const std::uint64_t v : result.raw_replies_per_site) put_u64(out, v);
  // Map and RTT entries in hash-map iteration order, deliberately NOT
  // sorted: a record only has to decode back to an equal RoundResult
  // (consumers that need an order — the CSV writer — sort at output
  // time), and at ~30k entries per round sorting here would cost more
  // than the append's write+fsync, dominating the journaling overhead
  // bench_journal keeps under 5%.
  out.reserve(out.size() + 8 + result.map.entries().size() * 5 +
              result.rtt_ms.size() * 8);
  put_u32(out, static_cast<std::uint32_t>(result.map.entries().size()));
  for (const auto& [block, site] : result.map.entries()) {
    put_u32(out, block.index());
    put_u8(out, static_cast<std::uint8_t>(site));
  }
  put_u32(out, static_cast<std::uint32_t>(result.rtt_ms.size()));
  for (const auto& [block, rtt] : result.rtt_ms) {
    put_u32(out, block.index());
    put_f32(out, rtt);
  }
}

bool decode_result(Cursor& in, RoundResult& result) {
  result.map.measurement_id = in.u32();
  result.map.probes_sent = in.u64();
  result.map.blocks_probed = in.u64();
  CleaningStats& c = result.map.cleaning;
  for (std::uint64_t* v : {&c.raw_replies, &c.malformed, &c.wrong_id,
                           &c.unsolicited, &c.duplicates, &c.late, &c.kept})
    *v = in.u64();
  result.started.usec = in.i64();
  result.probing_duration.usec = in.i64();
  sim::FaultStats& f = result.faults;
  for (std::uint64_t* v :
       {&f.probes_lost, &f.replies_generated, &f.replies_lost,
        &f.rate_limited, &f.outage_drops, &f.withdrawn, &f.diverted,
        &f.delayed, &f.retries, &f.recovered})
    *v = in.u64();
  const std::uint32_t sites = in.u32();
  if (!in.ok || sites > 1u << 16) return false;
  result.raw_replies_per_site.resize(sites);
  for (std::uint32_t s = 0; s < sites; ++s)
    result.raw_replies_per_site[s] = in.u64();
  const std::uint32_t mapped = in.u32();
  if (!in.ok || mapped > 1u << 24) return false;
  for (std::uint32_t i = 0; i < mapped; ++i) {
    const net::Block24 block{in.u32()};
    const auto site = static_cast<anycast::SiteId>(in.u8());
    if (!in.ok) return false;
    result.map.set(block, site);
  }
  const std::uint32_t rtts = in.u32();
  if (!in.ok || rtts > 1u << 24) return false;
  for (std::uint32_t i = 0; i < rtts; ++i) {
    const net::Block24 block{in.u32()};
    const float rtt = in.f32();
    if (!in.ok) return false;
    result.rtt_ms.emplace(block, rtt);
  }
  return in.ok && in.left == 0;
}

// ---- POSIX write plumbing + the kill-point hook -----------------------

bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Test-only crash hook: VP_JOURNAL_CRASH_AT=k makes the k-th frame write
/// of this process (1-based, the manifest counts) die mid-write with exit
/// code 86. The cut point cycles with k so a kill-at-every-write sweep
/// exercises all three crash positions: k%3==1 writes nothing (crash
/// before the append), k%3==2 writes half a frame (torn tail), k%3==0
/// writes the whole frame (crash after a durable append).
std::atomic<int> g_frame_writes{0};

int crash_at_frame() {
  static const int k = [] {
    const char* env = std::getenv("VP_JOURNAL_CRASH_AT");
    return env ? std::atoi(env) : 0;
  }();
  return k;
}

/// Test-only I/O-failure hook: VP_JOURNAL_FAIL_AT=k makes every frame
/// write from the k-th on (1-based, same counter as the crash hook)
/// report failure without touching the file — the signature of a journal
/// directory going unwritable (disk full, volume remounted read-only)
/// mid-campaign. Unlike the crash hook the process survives, so tests
/// can assert the failure is *surfaced* (exit code 6) rather than frames
/// being silently dropped.
int fail_at_frame() {
  static const int k = [] {
    const char* env = std::getenv("VP_JOURNAL_FAIL_AT");
    return env ? std::atoi(env) : 0;
  }();
  return k;
}

bool write_frame(int fd, std::string_view frame) {
  const int crash_k = crash_at_frame();
  const int fail_k = fail_at_frame();
  if (crash_k > 0 || fail_k > 0) {
    const int n = ++g_frame_writes;
    if (n == crash_k) {
      std::size_t cut = frame.size();
      if (crash_k % 3 == 1) cut = 0;
      if (crash_k % 3 == 2) cut = frame.size() / 2;
      write_all(fd, frame.data(), cut);
      ::fsync(fd);
      ::_exit(86);
    }
    if (fail_k > 0 && n >= fail_k) return false;
  }
  return write_all(fd, frame.data(), frame.size()) && ::fsync(fd) == 0;
}

// ---- journal parsing ---------------------------------------------------

struct Parsed {
  JournalStatus status = JournalStatus::kCorrupt;
  std::map<std::uint32_t, RoundResult> completed;
  std::uint64_t valid_bytes = 0;
};

/// Walks the frame sequence. A short frame at the tail is a torn append
/// (truncate there); a complete frame with a bad CRC or an undecodable
/// payload is corruption (refuse).
Parsed parse_journal(std::string_view data, const JournalManifest& expect) {
  Parsed out;
  std::size_t pos = 0;
  bool saw_manifest = false;
  while (pos < data.size()) {
    if (data.size() - pos < kFrameHeader) break;  // torn header
    Cursor header{data.substr(pos, kFrameHeader)};
    const std::uint32_t len = header.u32();
    const std::uint32_t crc = header.u32();
    if (data.size() - pos - kFrameHeader < len) break;  // torn payload
    const std::string_view payload = data.substr(pos + kFrameHeader, len);
    if (util::crc32(payload) != crc) {
      out.status = JournalStatus::kCorrupt;
      return out;
    }
    Cursor in{payload};
    const std::uint8_t type = in.u8();
    if (!saw_manifest) {
      if (type != kManifestType || in.u32() != kFormatVersion) {
        out.status = JournalStatus::kCorrupt;
        return out;
      }
      const std::uint64_t fingerprint = in.u64();
      const std::uint32_t rounds = in.u32();
      if (!in.ok || in.left != 0) {
        out.status = JournalStatus::kCorrupt;
        return out;
      }
      if (fingerprint != expect.fingerprint || rounds != expect.rounds) {
        out.status = JournalStatus::kFingerprintMismatch;
        return out;
      }
      saw_manifest = true;
    } else {
      if (type != kRoundType) {
        out.status = JournalStatus::kCorrupt;
        return out;
      }
      const std::uint32_t round = in.u32();
      RoundResult result;
      if (!in.ok || round >= expect.rounds || !decode_result(in, result)) {
        out.status = JournalStatus::kCorrupt;
        return out;
      }
      // Duplicates can only be bit-identical re-appends (results are
      // deterministic); first wins.
      out.completed.emplace(round, std::move(result));
    }
    pos += kFrameHeader + len;
  }
  // A torn (or absent) manifest means no usable state: start fresh.
  out.status = saw_manifest ? JournalStatus::kResumed : JournalStatus::kFresh;
  out.valid_bytes = pos;
  return out;
}

}  // namespace

const char* to_string(JournalStatus status) {
  switch (status) {
    case JournalStatus::kDisabled: return "disabled";
    case JournalStatus::kFresh: return "fresh";
    case JournalStatus::kResumed: return "resumed";
    case JournalStatus::kFingerprintMismatch: return "fingerprint-mismatch";
    case JournalStatus::kCorrupt: return "corrupt";
    case JournalStatus::kIoError: return "io-error";
  }
  return "unknown";
}

std::string CampaignJournal::frame(std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeader + payload.size());
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, util::crc32(payload));
  out.append(payload);
  return out;
}

std::string CampaignJournal::encode_manifest(const JournalManifest& manifest) {
  std::string payload;
  put_u8(payload, kManifestType);
  put_u32(payload, kFormatVersion);
  put_u64(payload, manifest.fingerprint);
  put_u32(payload, manifest.rounds);
  return payload;
}

std::string CampaignJournal::encode_round(std::uint32_t round,
                                          const RoundResult& result) {
  std::string payload;
  put_u8(payload, kRoundType);
  put_u32(payload, round);
  encode_result(payload, result);
  return payload;
}

CampaignJournal::OpenResult CampaignJournal::open(
    const std::string& path, const JournalManifest& manifest, bool resume) {
  close();
  OpenResult out;
  if (resume) {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      const std::string data{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
      Parsed parsed = parse_journal(data, manifest);
      if (parsed.status == JournalStatus::kFingerprintMismatch ||
          parsed.status == JournalStatus::kCorrupt) {
        out.status = parsed.status;  // refuse; file left untouched
        return out;
      }
      if (parsed.status == JournalStatus::kResumed) {
        if (parsed.valid_bytes < data.size() &&
            ::truncate(path.c_str(),
                       static_cast<off_t>(parsed.valid_bytes)) != 0) {
          out.status = JournalStatus::kIoError;
          return out;
        }
        fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
        if (fd_ < 0) {
          out.status = JournalStatus::kIoError;
          return out;
        }
        out.status = JournalStatus::kResumed;
        out.completed = std::move(parsed.completed);
        out.truncated_bytes = data.size() - parsed.valid_bytes;
        auto& registry = obs::metrics();
        registry.counter("vp_journal_rounds_loaded_total")
            .add(out.completed.size());
        registry.counter("vp_journal_truncated_bytes_total")
            .add(out.truncated_bytes);
        return out;
      }
      // kFresh: file exists but holds no usable manifest — recreate below.
    }
  }
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
  if (fd_ < 0) {
    out.status = JournalStatus::kIoError;
    return out;
  }
  if (!write_frame(fd_, frame(encode_manifest(manifest)))) {
    close();
    out.status = JournalStatus::kIoError;
    return out;
  }
  out.status = JournalStatus::kFresh;
  return out;
}

bool CampaignJournal::append_round(std::uint32_t round,
                                   const RoundResult& result) {
  if (fd_ < 0) return false;
  // The append span covers serialize + CRC + write + fsync — the whole
  // durability tax bench_journal prices (EXPERIMENTS.md: < 5% of a
  // round); the histogram makes it visible on live campaigns too.
  auto& registry = obs::metrics();
  obs::Span span{&registry.histogram("vp_journal_append_ms",
                                     obs::latency_buckets_ms())};
  const std::string framed = frame(encode_round(round, result));
  if (!write_frame(fd_, framed)) {
    close();  // fail fast: never append past a hole
    return false;
  }
  registry.counter("vp_journal_appends_total").add();
  registry.counter("vp_journal_bytes_total").add(framed.size());
  return true;
}

void CampaignJournal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t probe_fingerprint(const ProbeConfig& probe) {
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  std::uint64_t f = 0x70726f6265ULL;  // "probe"
  f = util::hash_combine(f, probe.measurement_id);
  f = util::hash_combine(f, bits(probe.rate_pps));
  f = util::hash_combine(f, bits(probe.late_cutoff_minutes));
  f = util::hash_combine(f, probe.order_seed);
  f = util::hash_combine(f,
                         static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(
                                 probe.extra_targets_per_block)));
  f = util::hash_combine(
      f, static_cast<std::uint64_t>(
             static_cast<std::int64_t>(probe.max_retries)));
  f = util::hash_combine(f, bits(probe.probe_timeout_ms));
  f = util::hash_combine(f, bits(probe.retry_backoff_ms));
  f = util::hash_combine(f, bits(probe.retry_backoff_factor));
  return f;
}

std::uint64_t fault_fingerprint(const sim::FaultInjector* faults) {
  if (faults == nullptr) return 0;
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  const sim::FaultPlan& plan = faults->plan();
  std::uint64_t f = 0x6661756c74ULL;  // "fault"
  f = util::hash_combine(f, plan.seed);
  for (const double rate :
       {plan.probe_loss_rate, plan.reply_loss_rate, plan.site_outage_rate,
        plan.outage_slice_minutes, plan.rate_limit_site_rate,
        plan.rate_limit_drop_rate, plan.churn_rate,
        plan.churn_withdraw_fraction, plan.delay_spike_rate,
        plan.delay_spike_mean_ms})
    f = util::hash_combine(f, bits(rate));
  return f;
}

}  // namespace vp::core
