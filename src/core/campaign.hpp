// Campaign: a builder for multi-round measurement runs.
//
// Owns the per-round policy the old Verfploeter::campaign() loop hard-
// coded: round r gets measurement id `base + r`, a fresh probe order via
// a per-round seed, and start time `r * interval` (the paper's 24-hour
// campaign is 96 rounds, 15 minutes apart, §4.2). Rounds are independent
// by construction — every stochastic process is a pure function of
// (block, round, seed) — so they can run concurrently; results land in
// round order regardless of completion order.
#pragma once

#include <cstdint>
#include <vector>

#include "core/probe_engine.hpp"
#include "core/round.hpp"

namespace vp::core {

class Verfploeter;

class Campaign {
 public:
  Campaign(const ProbeEngine& engine, const bgp::RoutingTable& routes)
      : engine_(&engine), routes_(&routes) {}
  /// Convenience overload so call sites can pass the Verfploeter facade.
  Campaign(const Verfploeter& verfploeter, const bgp::RoutingTable& routes);

  /// Base probe configuration; round r runs with measurement id
  /// `base.measurement_id + r` and order seed derived from
  /// `base.order_seed` and r.
  Campaign& probe(const ProbeConfig& base) {
    base_ = base;
    return *this;
  }
  Campaign& rounds(std::uint32_t count) {
    rounds_ = count;
    return *this;
  }
  Campaign& interval(util::SimTime spacing) {
    interval_ = spacing;
    return *this;
  }
  /// Probe-phase worker shards per round (RoundSpec::threads).
  Campaign& threads(unsigned probe_workers) {
    threads_ = probe_workers;
    return *this;
  }
  /// How many rounds run concurrently (1 = sequential, 0 = one per
  /// hardware thread). Total threads in flight is concurrency x threads.
  Campaign& concurrency(unsigned rounds_in_flight) {
    concurrency_ = rounds_in_flight;
    return *this;
  }
  /// Observer shared by every round; with concurrency > 1 its callbacks
  /// arrive from overlapping rounds (see RoundObserver's contract).
  Campaign& observe(RoundObserver& observer) {
    observer_ = &observer;
    return *this;
  }
  /// Fault plan applied to every round (RoundSpec::faults); the injector
  /// must outlive run(). Null (the default) runs clean.
  Campaign& faults(const sim::FaultInjector* injector) {
    faults_ = injector;
    return *this;
  }

  /// The fully-resolved spec for round r — the campaign's spacing and
  /// seeding policy in one place.
  RoundSpec spec_for(std::uint32_t r) const;

  /// Runs all rounds; out[r] is round r's result whatever the
  /// completion order.
  std::vector<RoundResult> run() const;

 private:
  const ProbeEngine* engine_;
  const bgp::RoutingTable* routes_;
  ProbeConfig base_;
  std::uint32_t rounds_ = 1;
  util::SimTime interval_ = util::SimTime::from_minutes(15);
  unsigned threads_ = 1;
  unsigned concurrency_ = 1;
  RoundObserver* observer_ = nullptr;
  const sim::FaultInjector* faults_ = nullptr;
};

}  // namespace vp::core
