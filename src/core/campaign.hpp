// Campaign: a builder for multi-round measurement runs.
//
// Owns the per-round policy the old Verfploeter::campaign() loop hard-
// coded: round r gets measurement id `base + r`, a fresh probe order via
// a per-round seed, and start time `r * interval` (the paper's 24-hour
// campaign is 96 rounds, 15 minutes apart, §4.2). Rounds are independent
// by construction — every stochastic process is a pure function of
// (block, round, seed) — so they can run concurrently; results land in
// round order regardless of completion order.
//
// With journal(path) set, every completed round is appended to a
// crash-safe CampaignJournal (core/journal.hpp) and resume(true) skips
// rounds already journaled — because rounds are pure functions of their
// spec, a kill → resume cycle produces results bit-identical to an
// uninterrupted run. Under concurrency > 1 rounds complete out of order,
// so resume honors the journaled *set* of round ids, not a high-water
// mark, and a partially-written (torn) round record simply re-runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/probe_engine.hpp"
#include "core/round.hpp"

namespace vp::core {

class Verfploeter;

/// What a journaled run did, alongside the results themselves.
struct CampaignReport {
  /// results[r] is round r's result whatever the completion order.
  /// Empty when ok() is false (resume was refused).
  std::vector<RoundResult> results;
  JournalStatus journal = JournalStatus::kDisabled;
  std::uint32_t rounds_loaded = 0;    ///< taken from the journal
  std::uint32_t rounds_executed = 0;  ///< actually run by this process
  std::uint64_t truncated_bytes = 0;  ///< torn tail discarded on resume
  /// True when the cancel flag stopped the run early. Rounds that were
  /// in flight finished and were journaled; later results are empty, so
  /// interrupted runs must not be treated as complete campaigns.
  bool interrupted = false;

  /// False when the journal refused (mismatch/corruption) or appends
  /// failed; refused runs carry no results.
  bool ok() const {
    return journal == JournalStatus::kDisabled ||
           journal == JournalStatus::kFresh ||
           journal == JournalStatus::kResumed;
  }
};

class Campaign {
 public:
  Campaign(const ProbeEngine& engine, const bgp::RoutingTable& routes)
      : engine_(&engine), routes_(&routes) {}
  /// Convenience overload so call sites can pass the Verfploeter facade.
  Campaign(const Verfploeter& verfploeter, const bgp::RoutingTable& routes);

  /// Base probe configuration; round r runs with measurement id
  /// `base.measurement_id + r` and order seed derived from
  /// `base.order_seed` and r.
  Campaign& probe(const ProbeConfig& base) {
    base_ = base;
    return *this;
  }
  Campaign& rounds(std::uint32_t count) {
    rounds_ = count;
    return *this;
  }
  Campaign& interval(util::SimTime spacing) {
    interval_ = spacing;
    return *this;
  }
  /// Probe-phase worker shards per round (RoundSpec::threads).
  Campaign& threads(unsigned probe_workers) {
    threads_ = probe_workers;
    return *this;
  }
  /// How many rounds run concurrently (1 = sequential, 0 = one per
  /// hardware thread). Total threads in flight is concurrency x threads.
  Campaign& concurrency(unsigned rounds_in_flight) {
    concurrency_ = rounds_in_flight;
    return *this;
  }
  /// Observer shared by every round; with concurrency > 1 its callbacks
  /// arrive from overlapping rounds (see RoundObserver's contract).
  Campaign& observe(RoundObserver& observer) {
    observer_ = &observer;
    return *this;
  }
  /// Fault plan applied to every round (RoundSpec::faults); the injector
  /// must outlive run(). Null (the default) runs clean.
  Campaign& faults(const sim::FaultInjector* injector) {
    faults_ = injector;
    return *this;
  }
  /// Journal completed rounds to `path`. `deployment_hash` folds the
  /// deployment's identity (anycast::fingerprint) into the manifest so a
  /// journal can never be resumed against different sites. Empty path
  /// (the default) disables journaling.
  Campaign& journal(std::string path, std::uint64_t deployment_hash = 0) {
    journal_path_ = std::move(path);
    deployment_hash_ = deployment_hash;
    return *this;
  }
  /// Attempt to resume from an existing journal at the journal path;
  /// without it a pre-existing journal is overwritten.
  Campaign& resume(bool attempt = true) {
    resume_ = attempt;
    return *this;
  }
  /// Cooperative cancellation (SIGINT-safe shutdown): the flag is checked
  /// before each round starts, never mid-round, so the round in flight —
  /// and its journal append — always completes. The journal therefore
  /// stays a prefix a later --resume continues bit-identically. Null (the
  /// default) never cancels; the flag must outlive run().
  Campaign& cancel(const std::atomic<bool>* flag) {
    cancel_ = flag;
    return *this;
  }

  /// The fully-resolved spec for round r — the campaign's spacing and
  /// seeding policy in one place.
  RoundSpec spec_for(std::uint32_t r) const;

  /// Fingerprint of everything that determines results: probe config,
  /// round count, interval, threads, fault plan, deployment hash. The
  /// journal manifest stores it; resume refuses on mismatch.
  std::uint64_t fingerprint() const;

  /// Runs all rounds; out[r] is round r's result whatever the
  /// completion order. Ignores any journal refusal (use run_reported()
  /// when journaling).
  std::vector<RoundResult> run() const;

  /// Runs all rounds with full journal/resume reporting. When resume is
  /// refused (fingerprint mismatch, corruption) no rounds run and the
  /// report carries the refusal status with empty results.
  CampaignReport run_reported() const;

 private:
  const ProbeEngine* engine_;
  const bgp::RoutingTable* routes_;
  ProbeConfig base_;
  std::uint32_t rounds_ = 1;
  util::SimTime interval_ = util::SimTime::from_minutes(15);
  unsigned threads_ = 1;
  unsigned concurrency_ = 1;
  RoundObserver* observer_ = nullptr;
  const sim::FaultInjector* faults_ = nullptr;
  std::string journal_path_;
  std::uint64_t deployment_hash_ = 0;
  bool resume_ = false;
  const std::atomic<bool>* cancel_ = nullptr;
};

}  // namespace vp::core
