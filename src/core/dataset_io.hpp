// Dataset export/import (the paper releases all measurement data as
// per-block catchment tables; see its Table 1/2 dataset citations).
//
// Format: plain CSV, one row per mapped /24 —
//     block,site,rtt_ms
//     1.2.3.0/24,LAX,182.40
// Unmapped blocks are simply absent. Load datasets use
//     block,daily_queries,good_fraction
// Both formats round-trip exactly (RTTs at two decimals).
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>

#include "anycast/deployment.hpp"
#include "core/verfploeter.hpp"
#include "dnsload/load_model.hpp"

namespace vp::core {

/// Writes a measured round (catchment + RTTs) as CSV.
void write_catchment_csv(std::ostream& out, const RoundResult& round,
                         const anycast::Deployment& deployment);

/// Reads a catchment CSV back. Unknown site codes or malformed rows make
/// the whole load fail (datasets are either intact or rejected).
std::optional<RoundResult> read_catchment_csv(
    std::istream& in, const anycast::Deployment& deployment);

/// Writes a load model's per-block volumes as CSV.
void write_load_csv(std::ostream& out, const dnsload::LoadModel& load);
void write_load_csv(std::ostream& out,
                    std::span<const dnsload::BlockLoad> blocks);

/// A load dataset read back from CSV (the subset of LoadModel the
/// analyses need, without regenerating the model).
struct LoadDataset {
  std::vector<dnsload::BlockLoad> blocks;
  double total_daily_queries = 0.0;
};

/// Rejects duplicate block rows (they would double-count into
/// total_daily_queries), like the catchment reader does.
std::optional<LoadDataset> read_load_csv(std::istream& in);

/// Convenience file wrappers; return false / nullopt on I/O failure.
/// Saves go through util::atomic_write_file — a crash mid-save leaves
/// either the previous file or the complete new one, never a torn CSV.
bool save_catchment(const std::string& path, const RoundResult& round,
                    const anycast::Deployment& deployment);
bool save_load_csv(const std::string& path, const dnsload::LoadModel& load);
std::optional<RoundResult> load_catchment(
    const std::string& path, const anycast::Deployment& deployment);

}  // namespace vp::core
