// The product of one Verfploeter measurement: block -> site.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "anycast/deployment.hpp"
#include "net/ipv4.hpp"

namespace vp::core {

/// Counters from the data-cleaning pass (paper §4, "Data cleaning: we
/// remove ... duplicate results, replies from IP-addresses that we did not
/// send a request to, and late replies").
struct CleaningStats {
  std::uint64_t raw_replies = 0;   // everything collectors recorded
  std::uint64_t malformed = 0;     // failed parse/checksum at collectors
  std::uint64_t wrong_id = 0;      // stale measurement id (older round)
  std::uint64_t unsolicited = 0;   // source address we never probed
  std::uint64_t duplicates = 0;    // block already mapped this round
  std::uint64_t late = 0;          // arrived after the cutoff
  std::uint64_t kept = 0;          // survived all filters

  std::uint64_t dropped() const {
    return malformed + wrong_id + unsolicited + duplicates + late;
  }
};

/// The catchment map measured by one round.
class CatchmentMap {
 public:
  /// Site serving a block; kUnknownSite if the block did not map.
  anycast::SiteId site_of(net::Block24 block) const {
    const auto it = sites_.find(block);
    return it == sites_.end() ? anycast::kUnknownSite : it->second;
  }

  bool contains(net::Block24 block) const { return sites_.count(block) > 0; }

  void set(net::Block24 block, anycast::SiteId site) {
    sites_.emplace(block, site);
  }

  /// Pre-sizes the map for `n` blocks so the cleaning loop's inserts
  /// never rehash mid-round.
  void reserve(std::size_t n) { sites_.reserve(n); }

  std::size_t mapped_blocks() const { return sites_.size(); }

  const std::unordered_map<net::Block24, anycast::SiteId>& entries() const {
    return sites_;
  }

  /// Blocks per site; index = site id, one extra slot is NOT added for
  /// unknown (unmapped blocks are simply absent).
  std::vector<std::uint64_t> per_site_counts(std::size_t site_count) const;

  /// Fraction of mapped blocks served by `site`.
  double fraction_to(anycast::SiteId site) const;

  CleaningStats cleaning;
  std::uint64_t probes_sent = 0;
  std::uint64_t blocks_probed = 0;
  std::uint32_t measurement_id = 0;

 private:
  std::unordered_map<net::Block24, anycast::SiteId> sites_;
};

}  // namespace vp::core
