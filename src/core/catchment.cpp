#include "core/catchment.hpp"

namespace vp::core {

std::vector<std::uint64_t> CatchmentMap::per_site_counts(
    std::size_t site_count) const {
  std::vector<std::uint64_t> counts(site_count, 0);
  for (const auto& [block, site] : sites_) {
    if (site >= 0 && static_cast<std::size_t>(site) < site_count)
      ++counts[static_cast<std::size_t>(site)];
  }
  return counts;
}

double CatchmentMap::fraction_to(anycast::SiteId site) const {
  if (sites_.empty()) return 0.0;
  std::uint64_t hits = 0;
  for (const auto& [block, s] : sites_)
    if (s == site) ++hits;
  return static_cast<double>(hits) / static_cast<double>(sites_.size());
}

}  // namespace vp::core
