#include "core/dataset_io.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/atomic_file.hpp"

namespace vp::core {

namespace {

/// Splits a CSV line at commas (our fields never contain commas/quotes).
std::vector<std::string_view> split_csv(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

std::optional<double> parse_double(std::string_view text) {
  double value = 0.0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  // from_chars accepts "nan"/"inf", which would sail through the
  // range checks below (NaN compares false to everything).
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

// --- buffered serialization ------------------------------------------------
// The writers below build the whole CSV in one string with
// std::to_chars and hand it to the stream in a single write. The old
// per-row path (snprintf into a stack buffer + five operator<< calls per
// row) spent most of write time inside ostream's sentry/locale machinery
// — at 6.4M rows that dominated `vpctl gen --probe --out`. Byte
// fidelity: to_chars(fixed, p) and to_chars(general, p) are specified to
// format exactly as printf "%.pf" / "%.pg", so output is identical to
// the legacy writer (the dataset_io tests byte-compare both paths).

void append_uint(std::string& out, std::uint32_t v) {
  char buf[10];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, static_cast<std::size_t>(end - buf));
}

/// "a.b.c.0/24" — what block.prefix().to_string() produces, without the
/// temporary strings.
void append_block(std::string& out, net::Block24 block) {
  const std::uint32_t index = block.index();
  append_uint(out, (index >> 16) & 0xff);
  out.push_back('.');
  append_uint(out, (index >> 8) & 0xff);
  out.push_back('.');
  append_uint(out, index & 0xff);
  out.append(".0/24");
}

/// printf "%.<precision>f".
void append_fixed(std::string& out, double v, int precision) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v,
                                       std::chars_format::fixed, precision);
  out.append(buf, static_cast<std::size_t>(end - buf));
}

/// printf "%.<precision>g".
void append_general(std::string& out, double v, int precision) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v,
                                       std::chars_format::general, precision);
  out.append(buf, static_cast<std::size_t>(end - buf));
}

void build_catchment_csv(std::string& out, const RoundResult& round,
                         const anycast::Deployment& deployment) {
  out += "block,site,rtt_ms\n";
  // Deterministic order: sort by block index.
  std::vector<net::Block24> blocks;
  blocks.reserve(round.map.entries().size());
  for (const auto& [block, site] : round.map.entries())
    blocks.push_back(block);
  std::sort(blocks.begin(), blocks.end());
  // ~27 bytes/row ("255.255.255.0/24,XXX,12.34\n"); headroom avoids the
  // doubling regrows on the big half of the fill.
  out.reserve(out.size() + blocks.size() * 28);
  for (const net::Block24 block : blocks) {
    const anycast::SiteId site = round.map.site_of(block);
    const auto rtt = round.rtt_ms.find(block);
    append_block(out, block);
    out.push_back(',');
    out += deployment.sites[static_cast<std::size_t>(site)].code;
    out.push_back(',');
    append_fixed(out,
                 rtt == round.rtt_ms.end() ? 0.0
                                           : static_cast<double>(rtt->second),
                 2);
    out.push_back('\n');
  }
}

void build_load_csv(std::string& out,
                    std::span<const dnsload::BlockLoad> blocks) {
  out += "block,daily_queries,good_fraction\n";
  out.reserve(out.size() + blocks.size() * 40);
  for (const dnsload::BlockLoad& bl : blocks) {
    append_block(out, bl.block);
    out.push_back(',');
    append_general(out, bl.daily_queries, 6);
    out.push_back(',');
    append_fixed(out, static_cast<double>(bl.good_fraction), 4);
    out.push_back('\n');
  }
}

}  // namespace

void write_catchment_csv(std::ostream& out, const RoundResult& round,
                         const anycast::Deployment& deployment) {
  std::string csv;
  build_catchment_csv(csv, round, deployment);
  out.write(csv.data(), static_cast<std::streamsize>(csv.size()));
}

std::optional<RoundResult> read_catchment_csv(
    std::istream& in, const anycast::Deployment& deployment) {
  std::string line;
  if (!std::getline(in, line) || line != "block,site,rtt_ms")
    return std::nullopt;
  RoundResult round;
  round.raw_replies_per_site.assign(deployment.sites.size(), 0);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = split_csv(line);
    if (fields.size() != 3) return std::nullopt;
    const auto prefix = net::Prefix::parse(fields[0]);
    if (!prefix || prefix->length() != 24) return std::nullopt;
    const auto site = deployment.site_by_code(fields[1]);
    if (!site) return std::nullopt;
    const auto rtt = parse_double(fields[2]);
    if (!rtt || *rtt < 0) return std::nullopt;
    const net::Block24 block{prefix->base().value() >> 8};
    if (round.map.contains(block)) return std::nullopt;  // duplicate row
    round.map.set(block, *site);
    round.rtt_ms.emplace(block, static_cast<float>(*rtt));
  }
  return round;
}

void write_load_csv(std::ostream& out,
                    std::span<const dnsload::BlockLoad> blocks) {
  std::string csv;
  build_load_csv(csv, blocks);
  out.write(csv.data(), static_cast<std::streamsize>(csv.size()));
}

void write_load_csv(std::ostream& out, const dnsload::LoadModel& load) {
  write_load_csv(out, load.blocks());
}

std::optional<LoadDataset> read_load_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) ||
      line != "block,daily_queries,good_fraction") {
    return std::nullopt;
  }
  LoadDataset dataset;
  std::unordered_set<net::Block24> seen;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = split_csv(line);
    if (fields.size() != 3) return std::nullopt;
    const auto prefix = net::Prefix::parse(fields[0]);
    const auto queries = parse_double(fields[1]);
    const auto good = parse_double(fields[2]);
    if (!prefix || prefix->length() != 24 || !queries || *queries < 0 ||
        !good || *good < 0 || *good > 1) {
      return std::nullopt;
    }
    dnsload::BlockLoad bl;
    bl.block = net::Block24{prefix->base().value() >> 8};
    // A repeated block would silently double-count into
    // total_daily_queries; reject, matching the catchment reader.
    if (!seen.insert(bl.block).second) return std::nullopt;
    bl.daily_queries = *queries;
    bl.good_fraction = static_cast<float>(*good);
    dataset.total_daily_queries += bl.daily_queries;
    dataset.blocks.push_back(bl);
  }
  return dataset;
}

bool save_catchment(const std::string& path, const RoundResult& round,
                    const anycast::Deployment& deployment) {
  std::string csv;
  build_catchment_csv(csv, round, deployment);
  return util::atomic_write_file(path, csv);
}

bool save_load_csv(const std::string& path, const dnsload::LoadModel& load) {
  std::string csv;
  build_load_csv(csv, load.blocks());
  return util::atomic_write_file(path, csv);
}

std::optional<RoundResult> load_catchment(
    const std::string& path, const anycast::Deployment& deployment) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return read_catchment_csv(in, deployment);
}

}  // namespace vp::core
