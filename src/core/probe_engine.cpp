#include "core/probe_engine.hpp"

#include <algorithm>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace vp::core {

namespace {

/// One worker's private round state. Nothing here is shared while the
/// probe phase runs; the coordinator merges after the workers join.
struct Shard {
  std::vector<Collector> collectors;  // one per site
  std::unordered_set<std::uint32_t> probed_addresses;
  std::unordered_set<std::uint32_t> probed_blocks;
  sim::FaultStats faults;  // summed at merge: order-invariant
  // Observability tallies (plain ints: private to the worker, flushed
  // into the registry by the coordinator — zero hot-path contention).
  std::uint64_t obs_probes = 0;      // unique targets probed
  std::uint64_t obs_replied = 0;     // probes answered within the timeout
  std::uint64_t obs_unanswered = 0;  // probes never answered in time
};

/// Registry handles the engine reports into, resolved once per process.
/// Everything here is observe-only (see obs/metrics.hpp): the round's
/// outputs are bit-identical whether the registry is enabled or not.
struct EngineMetrics {
  obs::Counter& rounds;
  obs::Counter& probes;
  obs::Counter& replied;
  obs::Counter& unanswered;
  obs::Counter& retries;
  obs::Counter& malformed;
  obs::Histogram& round_ms;
  obs::Histogram& probe_phase_ms;
  obs::Histogram& rtt_ms;

  static EngineMetrics& get() {
    auto& r = obs::metrics();
    const auto ms = obs::latency_buckets_ms();
    static EngineMetrics m{r.counter("vp_engine_rounds_total"),
                           r.counter("vp_engine_probes_sent_total"),
                           r.counter("vp_engine_probes_replied_total"),
                           r.counter("vp_engine_probes_unanswered_total"),
                           r.counter("vp_engine_retries_total"),
                           r.counter("vp_collector_malformed_total"),
                           r.histogram("vp_engine_round_ms", ms),
                           r.histogram("vp_engine_probe_phase_ms", ms),
                           r.histogram("vp_engine_rtt_ms", ms)};
    return m;
  }
};

double percentile(std::vector<float>& values, double p) {
  if (values.empty()) return 0.0;
  const std::size_t k = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  std::nth_element(values.begin(), values.begin() + k, values.end());
  return values[k];
}

}  // namespace

RoundResult ProbeEngine::run(const bgp::RoutingTable& routes,
                             const RoundSpec& spec,
                             RoundObserver* observer) const {
  const ProbeConfig& config = spec.probe;
  const anycast::Deployment& deployment = routes.deployment();
  const std::size_t site_count = deployment.sites.size();

  EngineMetrics& em = EngineMetrics::get();
  obs::Span round_span{&em.round_ms};

  // Materialize the block->site catchment table once, serially, before
  // the workers fan out — otherwise every worker's first probe piles up
  // on the resolver's call_once.
  internet_->warm(routes);

  RoundResult result;
  result.started = spec.start;

  // --- plan ---------------------------------------------------------------
  // offset[i] = probes emitted before order position i — the serial walk's
  // timestamp/sequence counter at that point. Every shard derives its tx
  // times and ICMP sequence numbers from these global indices, so packets
  // are bit-identical to the serial walk's no matter who builds them.
  const auto order = hitlist_->probe_order(
      util::hash_combine(config.order_seed, spec.round));
  const std::uint64_t target_seed =
      util::hash_combine(config.order_seed, 0x7a6e);
  std::vector<std::uint64_t> offset(order.size() + 1, 0);
  if (config.extra_targets_per_block == 0) {
    for (std::size_t i = 0; i <= order.size(); ++i) offset[i] = i;
  } else {
    for (std::size_t i = 0; i < order.size(); ++i) {
      const hitlist::Entry& entry = hitlist_->entries()[order[i]];
      offset[i + 1] = offset[i] +
                      hitlist_
                          ->targets_for(entry, config.extra_targets_per_block,
                                        target_seed)
                          .size();
    }
  }
  const std::uint64_t total_probes = offset[order.size()];

  // Contiguous chunks of the probe order, balanced by probe count.
  // Contiguity is what makes the merge order-preserving (see header).
  const unsigned shard_count = static_cast<unsigned>(std::min<std::uint64_t>(
      util::resolve_threads(spec.threads),
      std::max<std::uint64_t>(order.size(), 1)));
  std::vector<std::size_t> bounds(shard_count + 1, order.size());
  bounds[0] = 0;
  for (unsigned s = 1; s < shard_count; ++s) {
    const std::uint64_t want = total_probes * s / shard_count;
    bounds[s] = static_cast<std::size_t>(
        std::lower_bound(offset.begin(), offset.end(), want) -
        offset.begin());
  }

  // --- probe phase (sharded) ----------------------------------------------
  const util::SimTime gap =
      util::SimTime::from_seconds(1.0 / config.rate_pps);
  // Fault/retry path: only taken when a live plan or retries are
  // configured, so a plain round stays byte-identical to the pre-fault
  // engine. Retry timing is a pure function of the probe's global index
  // and attempt number (see ProbeConfig::max_retries), which keeps the
  // sharded merge deterministic.
  const sim::FaultInjector* injector =
      (spec.faults != nullptr && spec.faults->plan().enabled()) ? spec.faults
                                                                : nullptr;
  const int max_attempts = 1 + std::max(config.max_retries, 0);
  const bool robust = injector != nullptr || max_attempts > 1;
  const util::SimTime timeout =
      util::SimTime::from_seconds(config.probe_timeout_ms / 1000.0);
  const util::SimTime window =
      util::SimTime{gap.usec * static_cast<std::int64_t>(total_probes)};
  std::vector<Shard> shards(shard_count);
  std::mutex observer_mutex;
  std::uint64_t sent_total = 0;  // guarded by observer_mutex
  // Each worker reports every `stride` probes; dividing by the shard count
  // keeps the global reporting cadence roughly constant as threads grow.
  const std::uint64_t stride =
      std::max<std::uint64_t>((1u << 16) / shard_count, 4096);

  obs::Span probe_span{&em.probe_phase_ms};
  util::run_shards(shard_count, [&](unsigned s) {
    Shard& shard = shards[s];
    shard.collectors.reserve(site_count);
    for (std::size_t site = 0; site < site_count; ++site)
      shard.collectors.emplace_back(static_cast<anycast::SiteId>(site));
    const std::size_t begin = bounds[s];
    const std::size_t end = bounds[s + 1];
    shard.probed_addresses.reserve(
        static_cast<std::size_t>(offset[end] - offset[begin]) * 2);
    std::uint64_t probe_index = offset[begin];
    std::uint64_t since_report = 0;
    util::SimTime now =
        spec.start +
        util::SimTime{gap.usec * static_cast<std::int64_t>(probe_index)};
    for (std::size_t i = begin; i < end; ++i) {
      const hitlist::Entry& entry = hitlist_->entries()[order[i]];
      const auto targets = hitlist_->targets_for(
          entry, config.extra_targets_per_block, target_seed);
      for (const net::Ipv4Address target : targets) {
        shard.probed_addresses.insert(target.value());
        shard.probed_blocks.insert(entry.block.index());
        util::SimTime attempt_tx = now;
        double backoff_ms = config.retry_backoff_ms;
        bool answered = false;
        for (int attempt = 0; attempt < max_attempts; ++attempt) {
          if (attempt > 0) ++shard.faults.retries;
          bool answered_in_time = false;
          if (injector != nullptr &&
              injector->drops_probe(target, spec.round,
                                    static_cast<std::uint32_t>(attempt))) {
            ++shard.faults.probes_lost;
          } else {
            net::ProbePayload payload;
            payload.measurement_id = config.measurement_id;
            payload.tx_time_usec = attempt_tx.usec;
            payload.original_target = target;
            const net::PacketBytes probe = net::build_echo_request(
                deployment.measurement_address, target,
                static_cast<std::uint16_t>(config.measurement_id & 0xffff),
                static_cast<std::uint16_t>(probe_index & 0xffff), payload);
            auto deliveries =
                internet_->probe(routes, probe.data, attempt_tx, spec.round);
            if (injector != nullptr) {
              injector->apply_reply_faults(
                  deliveries, entry.block, spec.round,
                  static_cast<std::uint32_t>(attempt), attempt_tx,
                  site_count, spec.start, window, shard.faults);
            } else if (robust) {
              shard.faults.replies_generated += deliveries.size();
            }
            for (sim::Delivery& delivery : deliveries) {
              if (delivery.arrival <= attempt_tx + timeout)
                answered_in_time = true;
              shard.collectors[static_cast<std::size_t>(delivery.site)]
                  .receive(delivery.packet.data, delivery.arrival);
            }
          }
          if (answered_in_time) {
            if (attempt > 0) ++shard.faults.recovered;
            answered = true;
            break;
          }
          attempt_tx += timeout + util::SimTime::from_seconds(
                                      backoff_ms / 1000.0);
          backoff_ms *= config.retry_backoff_factor;
        }
        ++shard.obs_probes;
        if (answered)
          ++shard.obs_replied;
        else
          ++shard.obs_unanswered;
        ++probe_index;
        now += gap;
        if (observer != nullptr && ++since_report == stride) {
          std::lock_guard lock{observer_mutex};
          sent_total += since_report;
          since_report = 0;
          observer->on_probe_progress(spec, sent_total, total_probes);
        }
      }
    }
  });
  const double probe_phase_ms = probe_span.stop();
  if (observer != nullptr)
    observer->on_probe_progress(spec, total_probes, total_probes);

  result.probing_duration = window;
  result.map.measurement_id = config.measurement_id;

  // --- merge --------------------------------------------------------------
  // Shard address/block sets are disjoint (each hitlist entry lives in
  // exactly one chunk), so merging splices nodes without copies. Fault
  // counters are sums, so shard order cannot affect them.
  std::unordered_set<std::uint32_t> probed_addresses;
  std::unordered_set<std::uint32_t> probed_blocks;
  probed_addresses.reserve(static_cast<std::size_t>(total_probes) * 2);
  probed_blocks.reserve(order.size() * 2);
  for (Shard& shard : shards) {
    probed_addresses.merge(shard.probed_addresses);
    probed_blocks.merge(shard.probed_blocks);
    result.faults += shard.faults;
  }
  result.map.probes_sent = total_probes + result.faults.retries;
  result.map.blocks_probed = probed_blocks.size();
  if (observer != nullptr) observer->on_fault_stats(spec, result.faults);

  // Flush the workers' observability tallies. Labeled per-shard series
  // let a dashboard spot an unbalanced split; the aggregates feed the
  // one-line progress report. Skipped entirely when metrics are off —
  // nothing downstream reads them, so results cannot change (the
  // determinism test runs both ways and byte-compares the CSVs).
  if (obs::metrics().enabled()) {
    auto& reg = obs::metrics();
    for (unsigned s = 0; s < shard_count; ++s) {
      const Shard& shard = shards[s];
      const std::string label = "{shard=\"" + std::to_string(s) + "\"}";
      reg.counter("vp_engine_shard_probes_total" + label)
          .add(shard.obs_probes);
      reg.counter("vp_engine_shard_replied_total" + label)
          .add(shard.obs_replied);
      reg.counter("vp_engine_shard_unanswered_total" + label)
          .add(shard.obs_unanswered);
      reg.counter("vp_engine_shard_retries_total" + label)
          .add(shard.faults.retries);
      em.probes.add(shard.obs_probes);
      em.replied.add(shard.obs_replied);
      em.unanswered.add(shard.obs_unanswered);
      em.retries.add(shard.faults.retries);
    }
    if (robust) sim::record_fault_metrics(result.faults, reg);
  }

  // Per site, concatenate shard records in shard order: chunks are
  // contiguous in emission order, so this IS the serial receive order.
  std::vector<ReplyRecord> merged;
  result.raw_replies_per_site.assign(site_count, 0);
  CleaningStats& stats = result.map.cleaning;
  std::size_t total_records = 0;
  for (const Shard& shard : shards)
    for (const Collector& collector : shard.collectors)
      total_records += collector.records().size();
  merged.reserve(total_records);
  std::vector<std::uint64_t> site_bytes(site_count, 0);
  for (std::size_t site = 0; site < site_count; ++site) {
    for (const Shard& shard : shards) {
      const Collector& collector = shard.collectors[site];
      stats.malformed += collector.malformed();
      site_bytes[site] += collector.bytes_received();
      result.raw_replies_per_site[site] += collector.records().size();
      merged.insert(merged.end(), collector.records().begin(),
                    collector.records().end());
    }
  }
  stats.raw_replies = merged.size() + stats.malformed;
  if (obs::metrics().enabled()) {
    auto& reg = obs::metrics();
    for (std::size_t site = 0; site < site_count; ++site) {
      const std::string label =
          "{site=\"" + deployment.sites[site].code + "\"}";
      reg.counter("vp_collector_replies_total" + label)
          .add(result.raw_replies_per_site[site]);
      reg.counter("vp_collector_bytes_total" + label).add(site_bytes[site]);
    }
    em.malformed.add(stats.malformed);
  }
  if (observer != nullptr)
    observer->on_replies_collected(spec, result.raw_replies_per_site);

  // --- central cleaning (paper §4) ----------------------------------------
  // First reply wins: order by arrival (stable for determinism).
  std::stable_sort(merged.begin(), merged.end(),
                   [](const ReplyRecord& a, const ReplyRecord& b) {
                     return a.arrival < b.arrival;
                   });
  const util::SimTime cutoff =
      spec.start + util::SimTime::from_minutes(config.late_cutoff_minutes);
  std::vector<float> kept_rtts;  // for the p50/p95 in RoundMetrics
  for (const ReplyRecord& record : merged) {
    if (record.measurement_id != config.measurement_id) {
      ++stats.wrong_id;
      continue;
    }
    if (record.arrival > cutoff) {
      ++stats.late;
      continue;
    }
    if (probed_addresses.find(record.source.value()) ==
        probed_addresses.end()) {
      ++stats.unsolicited;
      continue;
    }
    const net::Block24 block = net::Block24::containing(record.source);
    if (result.map.contains(block)) {
      ++stats.duplicates;
      continue;
    }
    const float rtt =
        static_cast<float>((record.arrival - record.tx_time).usec) / 1000.0f;
    result.map.set(block, record.site);
    result.rtt_ms.emplace(block, rtt);
    kept_rtts.push_back(rtt);
    em.rtt_ms.observe(rtt);
    ++stats.kept;
  }
  em.rounds.add();
  const double wall_ms = round_span.stop();
  if (observer != nullptr) {
    observer->on_round_complete(spec, result);
    RoundMetrics metrics;
    metrics.wall_ms = wall_ms;
    metrics.probe_phase_ms = probe_phase_ms;
    metrics.probes_sent = result.map.probes_sent;
    metrics.replies_raw = stats.raw_replies;
    metrics.replies_kept = stats.kept;
    metrics.probes_per_sec =
        wall_ms > 0.0
            ? static_cast<double>(metrics.probes_sent) / (wall_ms / 1000.0)
            : 0.0;
    metrics.rtt_p50_ms = percentile(kept_rtts, 0.50);
    metrics.rtt_p95_ms = percentile(kept_rtts, 0.95);
    observer->on_metrics(spec, metrics);
  }
  return result;
}

}  // namespace vp::core
