#include "core/probe_engine.hpp"

#include <algorithm>
#include <mutex>
#include <string>
#include <vector>

#include "bgp/catchment_resolver.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/rng.hpp"
#include "util/round_arena.hpp"
#include "util/thread_pool.hpp"

namespace vp::core {

namespace {

/// Auto tile size (RoundSpec::tile_entries == 0): the probe-order entries
/// one shard walks before moving to the next block range. 32k entries
/// keep the resolver slice (~32KB), the flappy bitset (~4KB) and the
/// geo/responsiveness rows a tile touches comfortably inside LLC while
/// still amortizing the per-tile bucketing work.
constexpr std::uint32_t kDefaultTileEntries = 32768;

/// One merged reply in the cleaning array. `key` is the probe's global
/// index in the round's probe order and `seq` its per-probe delivery
/// counter (append order across attempts), so sorting by
/// (arrival, site, key, seq) — a strict total order, since (key, seq) is
/// unique per record — reproduces the legacy merge exactly:
/// the old pipeline concatenated per-(site, shard) record lists site-major
/// in shard order, then stable-sorted by arrival. Within one (site, shard)
/// list, records were appended in ascending (global probe index, delivery
/// seq); shards own ascending disjoint probe-index ranges; so the old
/// equal-arrival tie order WAS (site asc, probe index asc, seq asc).
/// Making that order explicit in the comparator frees every shard to
/// produce its records in any processing order — which is what lets the
/// tiled walk exist at all.
struct CleanRecord {
  std::int64_t arrival_usec = 0;
  std::int64_t tx_usec = 0;
  std::uint64_t key = 0;
  std::uint32_t source = 0;
  std::uint32_t measurement_id = 0;
  std::uint16_t seq = 0;
  anycast::SiteId site = anycast::kUnknownSite;

  friend bool operator<(const CleanRecord& a, const CleanRecord& b) {
    if (a.arrival_usec != b.arrival_usec) return a.arrival_usec < b.arrival_usec;
    if (a.site != b.site) return a.site < b.site;
    if (a.key != b.key) return a.key < b.key;
    return a.seq < b.seq;
  }
};

/// One worker's cross-round state. Nothing here is shared while the probe
/// phase runs; the coordinator reads it after the workers join. Lives in
/// the round arena so round N+1 starts with round N's capacities.
struct ShardWs {
  std::vector<ReplyBuffer> replies;        // one per site
  std::vector<std::uint32_t> tile_start;   // bucket -> first slot, size B+1
  std::vector<std::uint32_t> tile_cursor;  // counting-sort fill cursors
  std::vector<std::uint32_t> tile_entry;   // slot -> hitlist entry index
  std::vector<std::uint64_t> tile_gidx;    // slot -> first global probe idx
  std::vector<net::Ipv4Address> tile_targets;  // batched drop draws input
  std::vector<std::uint8_t> drops;             // batched drop draws output
  std::vector<net::Ipv4Address> targets_scratch;
  std::vector<std::uint8_t> probe_bytes;
  std::vector<std::uint8_t> reply_bytes;
  std::vector<sim::DeliveryView> deliveries;
  std::vector<std::uint32_t> probed_addresses;  // extra-targets mode only
  sim::FaultStats faults;  // summed at merge: order-invariant
  // Observability tallies (plain ints: private to the worker, flushed
  // into the registry by the coordinator — zero hot-path contention).
  std::uint64_t obs_probes = 0;      // unique targets probed
  std::uint64_t obs_replied = 0;     // probes answered within the timeout
  std::uint64_t obs_unanswered = 0;  // probes never answered in time
  std::uint64_t hot_grows = 0;       // capacity growths inside the loop
};

/// Everything the engine keeps alive between rounds. One instance per
/// arena; shapes repeat round to round (same hitlist, same threads), so
/// a steady-state round allocates nothing here.
struct EngineWorkspace {
  std::vector<std::uint32_t> order;
  std::vector<std::uint64_t> offset;  // extra-targets mode only
  std::vector<ShardWs> shards;
  std::vector<std::uint32_t> addr_by_block;  // block off -> probed address
  std::vector<std::uint64_t> mapped_bits;    // first-reply-wins bitmap
  std::vector<std::uint32_t> sorted_addresses;  // extra-targets mode only
  std::vector<CleanRecord> merged;
  std::vector<float> kept_rtts;
  std::vector<std::uint64_t> site_bytes;
};

/// Registry handles the engine reports into, resolved once per process.
/// Everything here is observe-only (see obs/metrics.hpp): the round's
/// outputs are bit-identical whether the registry is enabled or not.
struct EngineMetrics {
  obs::Counter& rounds;
  obs::Counter& probes;
  obs::Counter& replied;
  obs::Counter& unanswered;
  obs::Counter& retries;
  obs::Counter& malformed;
  obs::Counter& arena_reuses;
  obs::Counter& hot_allocs;
  obs::Histogram& round_ms;
  obs::Histogram& probe_phase_ms;
  obs::Histogram& rtt_ms;

  static EngineMetrics& get() {
    auto& r = obs::metrics();
    const auto ms = obs::latency_buckets_ms();
    static EngineMetrics m{r.counter("vp_engine_rounds_total"),
                           r.counter("vp_engine_probes_sent_total"),
                           r.counter("vp_engine_probes_replied_total"),
                           r.counter("vp_engine_probes_unanswered_total"),
                           r.counter("vp_engine_retries_total"),
                           r.counter("vp_collector_malformed_total"),
                           r.counter("vp_engine_arena_reuses_total"),
                           r.counter("vp_engine_hot_allocs_total"),
                           r.histogram("vp_engine_round_ms", ms),
                           r.histogram("vp_engine_probe_phase_ms", ms),
                           r.histogram("vp_engine_rtt_ms", ms)};
    return m;
  }
};

double percentile(std::vector<float>& values, double p) {
  if (values.empty()) return 0.0;
  const std::size_t k = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  std::nth_element(values.begin(), values.begin() + k, values.end());
  return values[k];
}

}  // namespace

RoundResult ProbeEngine::run(const bgp::RoutingTable& routes,
                             const RoundSpec& spec,
                             RoundObserver* observer) const {
  const ProbeConfig& config = spec.probe;
  const anycast::Deployment& deployment = routes.deployment();
  const std::size_t site_count = deployment.sites.size();

  EngineMetrics& em = EngineMetrics::get();
  obs::Span round_span{&em.round_ms};

  // Materialize the block->site catchment table once, serially, before
  // the workers fan out — otherwise every worker's first probe piles up
  // on the resolver's call_once.
  internet_->warm(routes);
  const bgp::CatchmentResolver* resolver =
      internet_->flips().resolver_for(routes);

  // Cross-round scratch: a caller-provided arena (Campaign, the daemon,
  // the benches) makes round N+1 reuse round N's capacities; without one
  // the round allocates privately and the arena dies with the call.
  util::RoundArena local_arena;
  util::RoundArena* arena = spec.arena != nullptr ? spec.arena : &local_arena;
  const std::uint64_t reuses_before = arena->reuses();
  EngineWorkspace& ws = arena->state<EngineWorkspace>();
  if (arena->reuses() > reuses_before) em.arena_reuses.add();

  RoundResult result;
  result.started = spec.start;

  // --- plan ---------------------------------------------------------------
  // Probe i's global index gives its tx timestamp and ICMP sequence as
  // pure functions (tx = start + i/rate), so packets are bit-identical to
  // the serial walk's no matter which shard or tile builds them. With no
  // extra targets the index IS the order position (one probe per entry)
  // and the prefix-sum array is elided entirely — 51MB saved at 6.4M.
  util::arena_reserve(ws.order, hitlist_->size(), *arena);
  hitlist_->probe_order_into(util::hash_combine(config.order_seed, spec.round),
                             ws.order);
  const auto& order = ws.order;
  const std::uint64_t target_seed =
      util::hash_combine(config.order_seed, 0x7a6e);
  const bool multi_target = config.extra_targets_per_block > 0;
  std::uint64_t total_probes = order.size();
  if (multi_target) {
    util::arena_reserve(ws.offset, order.size() + 1, *arena);
    ws.offset.assign(order.size() + 1, 0);
    std::vector<net::Ipv4Address> scratch;
    for (std::size_t i = 0; i < order.size(); ++i) {
      const hitlist::Entry& entry = hitlist_->entries()[order[i]];
      ws.offset[i + 1] =
          ws.offset[i] + hitlist_
                             ->targets_into(entry,
                                            config.extra_targets_per_block,
                                            target_seed, scratch)
                             .size();
    }
    total_probes = ws.offset[order.size()];
  }

  // Contiguous chunks of the probe order, balanced by probe count. Each
  // chunk owns an ascending, disjoint global probe-index range — the
  // property the merge sort's (key, seq) tie-break relies on.
  const unsigned shard_count = static_cast<unsigned>(std::min<std::uint64_t>(
      util::resolve_threads(spec.threads),
      std::max<std::uint64_t>(order.size(), 1)));
  std::vector<std::size_t> bounds(shard_count + 1, order.size());
  bounds[0] = 0;
  for (unsigned s = 1; s < shard_count; ++s) {
    const std::uint64_t want = total_probes * s / shard_count;
    bounds[s] =
        multi_target
            ? static_cast<std::size_t>(
                  std::lower_bound(ws.offset.begin(), ws.offset.end(), want) -
                  ws.offset.begin())
            : static_cast<std::size_t>(
                  std::min<std::uint64_t>(want, order.size()));
  }

  // Block span of the hitlist: backs the direct-mapped probed-address
  // table (one slot per /24) and the first-reply-wins bitmap, replacing
  // the per-round hash sets. Every probed address lies inside its
  // entry's block, so the span covers all of them.
  std::uint32_t block_lo = 0;
  std::size_t block_span = 0;
  if (!order.empty()) {
    std::uint32_t lo = 0xffffffff, hi = 0;
    for (const hitlist::Entry& entry : hitlist_->entries()) {
      lo = std::min(lo, entry.block.index());
      hi = std::max(hi, entry.block.index());
    }
    block_lo = lo;
    block_span = static_cast<std::size_t>(hi - lo) + 1;
  }
  if (!multi_target) {
    // Filled race-free inside the shard loop: each hitlist entry (and
    // thus each block slot) belongs to exactly one order position. The
    // zero sentinel is unambiguous — probed addresses have a nonzero
    // host byte, so their value is never 0.
    util::arena_reserve(ws.addr_by_block, block_span, *arena);
    ws.addr_by_block.assign(block_span, 0);
  }

  // --- probe phase (sharded, tiled) ---------------------------------------
  const util::SimTime gap =
      util::SimTime::from_seconds(1.0 / config.rate_pps);
  // Fault/retry path: only taken when a live plan or retries are
  // configured, so a plain round stays byte-identical to the pre-fault
  // engine. Retry timing is a pure function of the probe's global index
  // and attempt number (see ProbeConfig::max_retries), which keeps the
  // sharded merge deterministic.
  const sim::FaultInjector* injector =
      (spec.faults != nullptr && spec.faults->plan().enabled()) ? spec.faults
                                                                : nullptr;
  const int max_attempts = 1 + std::max(config.max_retries, 0);
  const bool robust = injector != nullptr || max_attempts > 1;
  const util::SimTime timeout =
      util::SimTime::from_seconds(config.probe_timeout_ms / 1000.0);
  const util::SimTime window =
      util::SimTime{gap.usec * static_cast<std::int64_t>(total_probes)};
  const std::uint32_t tile_entries =
      spec.tile_entries == 0 ? kDefaultTileEntries : spec.tile_entries;
  const std::size_t entry_count = hitlist_->size();
  const std::size_t bucket_count =
      entry_count == 0
          ? 1
          : (entry_count + tile_entries - 1) / tile_entries;

  util::arena_reserve(ws.shards, shard_count, *arena);
  if (ws.shards.size() < shard_count) ws.shards.resize(shard_count);
  std::mutex observer_mutex;
  std::uint64_t sent_total = 0;  // guarded by observer_mutex
  // Each worker reports every `stride` probes; dividing by the shard count
  // keeps the global reporting cadence roughly constant as threads grow.
  const std::uint64_t stride =
      std::max<std::uint64_t>((1u << 16) / shard_count, 4096);

  obs::Span probe_span{&em.probe_phase_ms};
  util::run_shards(shard_count, [&](unsigned s) {
    ShardWs& shard = ws.shards[s];
    // Capacity growths inside this worker are tracked against the
    // steady-state promise (vp_engine_hot_allocs_total): round 2+ of an
    // arena-backed campaign must report zero.
    const auto grow = [&shard](auto& vec, std::size_t n) {
      if (vec.capacity() < n) {
        vec.reserve(n);
        ++shard.hot_grows;
      }
    };
    shard.faults = {};
    shard.obs_probes = shard.obs_replied = shard.obs_unanswered = 0;
    if (shard.replies.size() != site_count) {
      shard.replies.resize(site_count);
      ++shard.hot_grows;
    }
    std::size_t reply_caps = 0;
    for (ReplyBuffer& buf : shard.replies) {
      buf.clear();
      reply_caps += buf.capacity();
    }
    const std::size_t begin = bounds[s];
    const std::size_t end = bounds[s + 1];
    const std::size_t chunk = end - begin;
    shard.probed_addresses.clear();
    if (multi_target) {
      grow(shard.probed_addresses,
           static_cast<std::size_t>(ws.offset[end] - ws.offset[begin]));
    }

    // Bucket the chunk's order positions into block-range tiles with one
    // counting sort: tile t holds the positions whose entry index lands
    // in [t*tile_entries, (t+1)*tile_entries). Entry indices track block
    // indices (the hitlist follows the topology's ascending block run),
    // so a tile's resolver/geo/responsiveness rows stay cache-resident
    // while its probes run, instead of the whole-range random walk that
    // made the 6.4M round memory-bound.
    grow(shard.tile_start, bucket_count + 1);
    grow(shard.tile_cursor, bucket_count);
    grow(shard.tile_entry, chunk);
    grow(shard.tile_gidx, chunk);
    shard.tile_start.assign(bucket_count + 1, 0);
    shard.tile_entry.resize(chunk);
    shard.tile_gidx.resize(chunk);
    for (std::size_t i = begin; i < end; ++i)
      ++shard.tile_start[order[i] / tile_entries + 1];
    for (std::size_t b = 0; b < bucket_count; ++b)
      shard.tile_start[b + 1] += shard.tile_start[b];
    shard.tile_cursor.assign(shard.tile_start.begin(),
                             shard.tile_start.end() - 1);
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t slot = shard.tile_cursor[order[i] / tile_entries]++;
      shard.tile_entry[slot] = order[i];
      shard.tile_gidx[slot] =
          multi_target ? ws.offset[i] : static_cast<std::uint64_t>(i);
    }

    std::uint64_t since_report = 0;
    sim::DataplaneTally dataplane;
    sim::ResolveTally resolve_tally;
    for (std::size_t t = 0; t < bucket_count; ++t) {
      const std::uint32_t slot_begin = shard.tile_start[t];
      const std::uint32_t slot_end = shard.tile_start[t + 1];
      if (slot_begin == slot_end) continue;
      if (resolver != nullptr) {
        // Warm-touch the resolver slices this tile will read. Advisory
        // only — results never depend on it.
        const std::size_t e_lo = t * static_cast<std::size_t>(tile_entries);
        const std::size_t e_hi =
            std::min(e_lo + tile_entries, entry_count) - 1;
        resolver->warm_touch(hitlist_->entries()[e_lo].block,
                             hitlist_->entries()[e_hi].block);
      }
      if (injector != nullptr && !multi_target) {
        // Batch the first-attempt forward-loss draws for the whole tile:
        // the seed/salt/round combine hoists out of the loop, the bits
        // are identical to per-probe drops_probe calls.
        grow(shard.tile_targets, slot_end - slot_begin);
        grow(shard.drops, slot_end - slot_begin);
        shard.tile_targets.clear();
        for (std::uint32_t p = slot_begin; p < slot_end; ++p)
          shard.tile_targets.push_back(
              hitlist_->entries()[shard.tile_entry[p]].target);
        injector->drops_probe_batch(shard.tile_targets, spec.round, 0,
                                    shard.drops);
      }

      for (std::uint32_t p = slot_begin; p < slot_end; ++p) {
        const hitlist::Entry& entry = hitlist_->entries()[shard.tile_entry[p]];
        const auto targets =
            hitlist_->targets_into(entry, config.extra_targets_per_block,
                                   target_seed, shard.targets_scratch);
        std::uint64_t probe_index = shard.tile_gidx[p];
        for (std::size_t k = 0; k < targets.size(); ++k) {
          const net::Ipv4Address target = targets[k];
          if (multi_target)
            shard.probed_addresses.push_back(target.value());
          else
            ws.addr_by_block[entry.block.index() - block_lo] = target.value();
          util::SimTime attempt_tx =
              spec.start + util::SimTime{gap.usec * static_cast<std::int64_t>(
                                                        probe_index)};
          double backoff_ms = config.retry_backoff_ms;
          bool answered = false;
          std::uint16_t seq = 0;
          for (int attempt = 0; attempt < max_attempts; ++attempt) {
            if (attempt > 0) ++shard.faults.retries;
            bool answered_in_time = false;
            const bool dropped =
                injector != nullptr &&
                (attempt == 0 && !multi_target
                     ? shard.drops[p - slot_begin] != 0
                     : injector->drops_probe(
                           target, spec.round,
                           static_cast<std::uint32_t>(attempt)));
            if (dropped) {
              ++shard.faults.probes_lost;
            } else {
              net::ProbePayload payload;
              payload.measurement_id = config.measurement_id;
              payload.tx_time_usec = attempt_tx.usec;
              payload.original_target = target;
              net::build_echo_request_into(
                  shard.probe_bytes, deployment.measurement_address, target,
                  static_cast<std::uint16_t>(config.measurement_id & 0xffff),
                  static_cast<std::uint16_t>(probe_index & 0xffff), payload);
              internet_->probe_into(routes, shard.probe_bytes, attempt_tx,
                                    spec.round, shard.deliveries,
                                    shard.reply_bytes, &dataplane,
                                    &resolve_tally);
              if (injector != nullptr) {
                injector->apply_reply_faults(
                    shard.deliveries, entry.block, spec.round,
                    static_cast<std::uint32_t>(attempt), attempt_tx,
                    site_count, spec.start, window, shard.faults);
              } else if (robust) {
                shard.faults.replies_generated += shard.deliveries.size();
              }
              if (!shard.deliveries.empty()) {
                // All deliveries of one attempt share the same bytes:
                // parse once, then append per-site SoA rows (the legacy
                // collectors re-parsed per delivery).
                const auto parsed = net::parse_reply_view(shard.reply_bytes);
                for (const sim::DeliveryView& delivery : shard.deliveries) {
                  if (delivery.arrival <= attempt_tx + timeout)
                    answered_in_time = true;
                  ReplyBuffer& buf =
                      shard.replies[static_cast<std::size_t>(delivery.site)];
                  ++buf.packets_received;
                  buf.bytes_received += shard.reply_bytes.size();
                  if (!parsed) {
                    ++buf.malformed;
                  } else {
                    buf.push(delivery.arrival.usec, parsed->probe.tx_time_usec,
                             probe_index, parsed->ip.source.value(),
                             parsed->probe.measurement_id, seq);
                  }
                  ++seq;
                }
              }
            }
            if (answered_in_time) {
              if (attempt > 0) ++shard.faults.recovered;
              answered = true;
              break;
            }
            attempt_tx += timeout + util::SimTime::from_seconds(
                                        backoff_ms / 1000.0);
            backoff_ms *= config.retry_backoff_factor;
          }
          ++shard.obs_probes;
          if (answered)
            ++shard.obs_replied;
          else
            ++shard.obs_unanswered;
          ++probe_index;
          if (observer != nullptr && ++since_report == stride) {
            std::lock_guard lock{observer_mutex};
            sent_total += since_report;
            since_report = 0;
            observer->on_probe_progress(spec, sent_total, total_probes);
          }
        }
      }
      // One flush of the tile's dataplane/resolution tallies — the only
      // time this worker touches the shared obs layer per tile.
      sim::InternetSim::flush(dataplane);
      sim::FlipModel::flush(resolve_tally);
    }
    std::size_t reply_caps_after = 0;
    for (const ReplyBuffer& buf : shard.replies)
      reply_caps_after += buf.capacity();
    if (reply_caps_after != reply_caps) ++shard.hot_grows;
  });
  const double probe_phase_ms = probe_span.stop();
  if (observer != nullptr)
    observer->on_probe_progress(spec, total_probes, total_probes);

  result.probing_duration = window;
  result.map.measurement_id = config.measurement_id;

  // --- merge --------------------------------------------------------------
  // Fault counters and tallies are sums, so shard order cannot affect
  // them. Every hitlist entry (= one block) was probed by exactly one
  // shard, so blocks_probed is just the entry count.
  // NB: ws.shards may be longer than shard_count when a cross-round arena
  // served a wider round earlier — only the first shard_count entries
  // belong to THIS round, so every merge loop below indexes explicitly.
  std::uint64_t hot_grows = 0;
  for (unsigned s = 0; s < shard_count; ++s) {
    result.faults += ws.shards[s].faults;
    hot_grows += ws.shards[s].hot_grows;
    ws.shards[s].hot_grows = 0;
  }
  em.hot_allocs.add(hot_grows);
  arena->note_grow(hot_grows);
  result.map.probes_sent = total_probes + result.faults.retries;
  result.map.blocks_probed = order.size();
  if (observer != nullptr) observer->on_fault_stats(spec, result.faults);

  // Flush the workers' observability tallies. Labeled per-shard series
  // let a dashboard spot an unbalanced split; the aggregates feed the
  // one-line progress report. Skipped entirely when metrics are off —
  // nothing downstream reads them, so results cannot change (the
  // determinism test runs both ways and byte-compares the CSVs).
  if (obs::metrics().enabled()) {
    auto& reg = obs::metrics();
    for (unsigned s = 0; s < shard_count; ++s) {
      const ShardWs& shard = ws.shards[s];
      const std::string label = "{shard=\"" + std::to_string(s) + "\"}";
      reg.counter("vp_engine_shard_probes_total" + label)
          .add(shard.obs_probes);
      reg.counter("vp_engine_shard_replied_total" + label)
          .add(shard.obs_replied);
      reg.counter("vp_engine_shard_unanswered_total" + label)
          .add(shard.obs_unanswered);
      reg.counter("vp_engine_shard_retries_total" + label)
          .add(shard.faults.retries);
      em.probes.add(shard.obs_probes);
      em.replied.add(shard.obs_replied);
      em.unanswered.add(shard.obs_unanswered);
      em.retries.add(shard.faults.retries);
    }
    if (robust) sim::record_fault_metrics(result.faults, reg);
  }

  // Gather every shard's SoA rows into one cleaning array. Gather order
  // is irrelevant: the sort below is a strict total order (see
  // CleanRecord), so any processing schedule lands on the same sequence.
  result.raw_replies_per_site.assign(site_count, 0);
  CleaningStats& stats = result.map.cleaning;
  std::size_t total_records = 0;
  for (unsigned s = 0; s < shard_count; ++s)
    for (const ReplyBuffer& buf : ws.shards[s].replies)
      total_records += buf.size();
  // An eighth of headroom so round-to-round reply variance under a
  // cross-round arena doesn't force a yearly regrow.
  util::arena_reserve(ws.merged, total_records + total_records / 8, *arena);
  ws.merged.clear();
  util::arena_reserve(ws.site_bytes, site_count, *arena);
  ws.site_bytes.assign(site_count, 0);
  for (unsigned s = 0; s < shard_count; ++s) {
    const ShardWs& shard = ws.shards[s];
    for (std::size_t site = 0; site < shard.replies.size(); ++site) {
      const ReplyBuffer& buf = shard.replies[site];
      stats.malformed += buf.malformed;
      ws.site_bytes[site] += buf.bytes_received;
      result.raw_replies_per_site[site] += buf.size();
      for (std::size_t i = 0; i < buf.size(); ++i) {
        CleanRecord record;
        record.arrival_usec = buf.arrival_usec[i];
        record.tx_usec = buf.tx_usec[i];
        record.key = buf.key[i];
        record.source = buf.source[i];
        record.measurement_id = buf.measurement_id[i];
        record.seq = buf.seq[i];
        record.site = static_cast<anycast::SiteId>(site);
        ws.merged.push_back(record);
      }
    }
  }
  stats.raw_replies = ws.merged.size() + stats.malformed;
  if (obs::metrics().enabled()) {
    auto& reg = obs::metrics();
    for (std::size_t site = 0; site < site_count; ++site) {
      const std::string label =
          "{site=\"" + deployment.sites[site].code + "\"}";
      reg.counter("vp_collector_replies_total" + label)
          .add(result.raw_replies_per_site[site]);
      reg.counter("vp_collector_bytes_total" + label).add(ws.site_bytes[site]);
    }
    em.malformed.add(stats.malformed);
  }
  if (observer != nullptr)
    observer->on_replies_collected(spec, result.raw_replies_per_site);

  // --- central cleaning (paper §4) ----------------------------------------
  // First reply wins: the total order over (arrival, site, key, seq)
  // reproduces the legacy arrival-stable-sorted shard concat exactly, so
  // the cleaning pass below runs on the same sequence it always did.
  std::sort(ws.merged.begin(), ws.merged.end());
  const util::SimTime cutoff =
      spec.start + util::SimTime::from_minutes(config.late_cutoff_minutes);
  util::arena_reserve(ws.kept_rtts, order.size(), *arena);
  ws.kept_rtts.clear();
  util::arena_reserve(ws.mapped_bits, (block_span + 63) / 64, *arena);
  ws.mapped_bits.assign((block_span + 63) / 64, 0);
  if (multi_target) {
    // Fallback probed-address index: concatenate the shards' (disjoint)
    // address lists and binary-search. The direct map can't be used — a
    // block probes several addresses.
    util::arena_reserve(ws.sorted_addresses, total_probes, *arena);
    ws.sorted_addresses.clear();
    for (unsigned s = 0; s < shard_count; ++s)
      ws.sorted_addresses.insert(ws.sorted_addresses.end(),
                                 ws.shards[s].probed_addresses.begin(),
                                 ws.shards[s].probed_addresses.end());
    std::sort(ws.sorted_addresses.begin(), ws.sorted_addresses.end());
  }
  result.map.reserve(order.size());
  result.rtt_ms.reserve(order.size());
  for (const CleanRecord& record : ws.merged) {
    if (record.measurement_id != config.measurement_id) {
      ++stats.wrong_id;
      continue;
    }
    if (record.arrival_usec > cutoff.usec) {
      ++stats.late;
      continue;
    }
    const net::Block24 block =
        net::Block24::containing(net::Ipv4Address{record.source});
    const std::size_t off = static_cast<std::size_t>(
        block.index() - block_lo);  // wraps below block_lo: off >= span
    if (multi_target
            ? !std::binary_search(ws.sorted_addresses.begin(),
                                  ws.sorted_addresses.end(), record.source)
            : off >= block_span || ws.addr_by_block[off] != record.source) {
      ++stats.unsolicited;
      continue;
    }
    const std::uint64_t bit = std::uint64_t{1} << (off & 63);
    if ((ws.mapped_bits[off >> 6] & bit) != 0) {
      ++stats.duplicates;
      continue;
    }
    ws.mapped_bits[off >> 6] |= bit;
    const float rtt =
        static_cast<float>(record.arrival_usec - record.tx_usec) / 1000.0f;
    result.map.set(block, record.site);
    result.rtt_ms.emplace(block, rtt);
    ws.kept_rtts.push_back(rtt);
    em.rtt_ms.observe(rtt);
    ++stats.kept;
  }
  em.rounds.add();
  const double wall_ms = round_span.stop();
  if (observer != nullptr) {
    observer->on_round_complete(spec, result);
    RoundMetrics metrics;
    metrics.wall_ms = wall_ms;
    metrics.probe_phase_ms = probe_phase_ms;
    metrics.probes_sent = result.map.probes_sent;
    metrics.replies_raw = stats.raw_replies;
    metrics.replies_kept = stats.kept;
    metrics.probes_per_sec =
        wall_ms > 0.0
            ? static_cast<double>(metrics.probes_sent) / (wall_ms / 1000.0)
            : 0.0;
    metrics.rtt_p50_ms = percentile(ws.kept_rtts, 0.50);
    metrics.rtt_p95_ms = percentile(ws.kept_rtts, 0.95);
    observer->on_metrics(spec, metrics);
  }
  return result;
}

}  // namespace vp::core
