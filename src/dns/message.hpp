// DNS wire format (RFC 1035 subset).
//
// The anycast service the paper studies *is* DNS, and the traditional
// catchment-mapping side (RIPE Atlas) identifies sites with a CHAOS-class
// TXT query for "hostname.bind" (paper §3.1, [49]). This module provides
// the real message encoding for that path: header, question, and TXT/A
// resource records, with strict parsing (bounded labels, no compression
// pointers on encode, loop-safe decompression on parse).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace vp::dns {

/// Record/query types we support.
enum class Type : std::uint16_t {
  kA = 1,
  kNs = 2,
  kSoa = 6,
  kTxt = 16,
  kAaaa = 28,
};

/// DNS classes; CHAOS is the vehicle for hostname.bind.
enum class Class : std::uint16_t {
  kIn = 1,
  kChaos = 3,
};

/// RFC 1035 RCODEs we emit.
enum class RCode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

/// A domain name held as dotted text ("hostname.bind", "example.com").
/// Comparison is case-insensitive per RFC 1035 §2.3.3.
class Name {
 public:
  Name() = default;
  explicit Name(std::string text) : text_(std::move(text)) {}

  const std::string& text() const { return text_; }
  bool empty() const { return text_.empty(); }

  /// Wire-encodes as length-prefixed labels + root. Fails (returns false)
  /// on empty labels or labels > 63 bytes.
  bool encode(std::vector<std::uint8_t>& out) const;

  /// Parses a (possibly compressed) name at `offset` within `message`.
  /// Advances `offset` past the name's bytes at its original position.
  static std::optional<Name> parse(std::span<const std::uint8_t> message,
                                   std::size_t& offset);

  bool equals_ignore_case(const Name& other) const;

 private:
  std::string text_;
};

struct Question {
  Name name;
  Type type = Type::kA;
  Class cls = Class::kIn;
};

struct ResourceRecord {
  Name name;
  Type type = Type::kTxt;
  Class cls = Class::kChaos;
  std::uint32_t ttl = 0;
  std::vector<std::uint8_t> rdata;

  /// Builds a TXT rdata (single character-string) from text.
  static std::vector<std::uint8_t> txt_rdata(std::string_view text);
  /// Extracts the first character-string of a TXT rdata.
  static std::optional<std::string> txt_text(
      std::span<const std::uint8_t> rdata);
};

/// A DNS message: header + sections.
struct Message {
  std::uint16_t id = 0;
  bool is_response = false;
  bool authoritative = false;
  bool recursion_desired = false;
  RCode rcode = RCode::kNoError;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;

  /// Serializes to wire bytes (no compression, fine for our sizes).
  /// Returns nullopt if any name fails to encode.
  std::optional<std::vector<std::uint8_t>> serialize() const;

  /// Parses a full message; nullopt on any malformation (truncation,
  /// bad label, compression loop, counts beyond the buffer).
  static std::optional<Message> parse(std::span<const std::uint8_t> data);
};

/// Builds the classic site-identification query (CH TXT hostname.bind).
Message make_hostname_bind_query(std::uint16_t id);

/// Builds the authoritative response a site's name server returns, with
/// the site identifier (e.g. "b1-lax") as the TXT payload.
Message make_hostname_bind_response(const Message& query,
                                    std::string_view site_hostname);

/// Extracts the site hostname from a hostname.bind response; nullopt if
/// the message is not a well-formed, matching response.
std::optional<std::string> parse_hostname_bind_response(
    const Message& response);

}  // namespace vp::dns
