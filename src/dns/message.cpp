#include "dns/message.hpp"

#include <algorithm>
#include <cctype>

namespace vp::dns {
namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v));
}

std::optional<std::uint16_t> get_u16(std::span<const std::uint8_t> d,
                                     std::size_t& at) {
  if (at + 2 > d.size()) return std::nullopt;
  const auto v = static_cast<std::uint16_t>((d[at] << 8) | d[at + 1]);
  at += 2;
  return v;
}

std::optional<std::uint32_t> get_u32(std::span<const std::uint8_t> d,
                                     std::size_t& at) {
  const auto hi = get_u16(d, at);
  if (!hi) return std::nullopt;
  const auto lo = get_u16(d, at);
  if (!lo) return std::nullopt;
  return (std::uint32_t{*hi} << 16) | *lo;
}

char ascii_lower(char c) {
  return static_cast<char>(
      std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

bool Name::encode(std::vector<std::uint8_t>& out) const {
  std::size_t start = 0;
  while (start < text_.size()) {
    std::size_t dot = text_.find('.', start);
    if (dot == std::string::npos) dot = text_.size();
    const std::size_t len = dot - start;
    if (len == 0 || len > 63) return false;
    out.push_back(static_cast<std::uint8_t>(len));
    out.insert(out.end(), text_.begin() + static_cast<std::ptrdiff_t>(start),
               text_.begin() + static_cast<std::ptrdiff_t>(dot));
    start = dot + 1;
  }
  out.push_back(0);  // root
  return true;
}

std::optional<Name> Name::parse(std::span<const std::uint8_t> message,
                                std::size_t& offset) {
  std::string text;
  std::size_t at = offset;
  bool jumped = false;
  std::size_t end_of_name = offset;  // where parsing resumes
  int hops = 0;
  while (true) {
    if (at >= message.size()) return std::nullopt;
    const std::uint8_t len = message[at];
    if ((len & 0xc0) == 0xc0) {  // compression pointer
      if (at + 1 >= message.size()) return std::nullopt;
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | message[at + 1];
      if (!jumped) end_of_name = at + 2;
      jumped = true;
      if (target >= at || ++hops > 32) return std::nullopt;  // loop guard
      at = target;
      continue;
    }
    if ((len & 0xc0) != 0) return std::nullopt;  // reserved label types
    ++at;
    if (len == 0) break;  // root
    if (at + len > message.size()) return std::nullopt;
    if (!text.empty()) text.push_back('.');
    text.append(reinterpret_cast<const char*>(message.data() + at), len);
    at += len;
    if (text.size() > 253) return std::nullopt;
  }
  if (!jumped) end_of_name = at;
  offset = end_of_name;
  return Name{std::move(text)};
}

bool Name::equals_ignore_case(const Name& other) const {
  return text_.size() == other.text_.size() &&
         std::equal(text_.begin(), text_.end(), other.text_.begin(),
                    [](char a, char b) {
                      return ascii_lower(a) == ascii_lower(b);
                    });
}

std::vector<std::uint8_t> ResourceRecord::txt_rdata(std::string_view text) {
  const std::size_t len = std::min<std::size_t>(text.size(), 255);
  // Sized up front (not push_back + insert): GCC 12's -Warray-bounds
  // false-positives on vector::insert growing a 1-byte vector at -O2.
  std::vector<std::uint8_t> out(len + 1);
  out[0] = static_cast<std::uint8_t>(len);
  std::copy_n(text.begin(), len, out.begin() + 1);
  return out;
}

std::optional<std::string> ResourceRecord::txt_text(
    std::span<const std::uint8_t> rdata) {
  if (rdata.empty()) return std::nullopt;
  const std::uint8_t len = rdata[0];
  if (1 + static_cast<std::size_t>(len) > rdata.size()) return std::nullopt;
  return std::string{reinterpret_cast<const char*>(rdata.data() + 1), len};
}

std::optional<std::vector<std::uint8_t>> Message::serialize() const {
  std::vector<std::uint8_t> out;
  put_u16(out, id);
  std::uint16_t flags = 0;
  if (is_response) flags |= 0x8000;
  if (authoritative) flags |= 0x0400;
  if (recursion_desired) flags |= 0x0100;
  flags |= static_cast<std::uint16_t>(rcode) & 0x0f;
  put_u16(out, flags);
  put_u16(out, static_cast<std::uint16_t>(questions.size()));
  put_u16(out, static_cast<std::uint16_t>(answers.size()));
  put_u16(out, 0);  // NSCOUNT
  put_u16(out, 0);  // ARCOUNT
  for (const Question& q : questions) {
    if (!q.name.encode(out)) return std::nullopt;
    put_u16(out, static_cast<std::uint16_t>(q.type));
    put_u16(out, static_cast<std::uint16_t>(q.cls));
  }
  for (const ResourceRecord& rr : answers) {
    if (!rr.name.encode(out)) return std::nullopt;
    put_u16(out, static_cast<std::uint16_t>(rr.type));
    put_u16(out, static_cast<std::uint16_t>(rr.cls));
    put_u32(out, rr.ttl);
    if (rr.rdata.size() > 0xffff) return std::nullopt;
    put_u16(out, static_cast<std::uint16_t>(rr.rdata.size()));
    out.insert(out.end(), rr.rdata.begin(), rr.rdata.end());
  }
  return out;
}

std::optional<Message> Message::parse(std::span<const std::uint8_t> data) {
  std::size_t at = 0;
  Message msg;
  const auto id = get_u16(data, at);
  const auto flags = get_u16(data, at);
  const auto qdcount = get_u16(data, at);
  const auto ancount = get_u16(data, at);
  const auto nscount = get_u16(data, at);
  const auto arcount = get_u16(data, at);
  if (!id || !flags || !qdcount || !ancount || !nscount || !arcount)
    return std::nullopt;
  msg.id = *id;
  msg.is_response = (*flags & 0x8000) != 0;
  msg.authoritative = (*flags & 0x0400) != 0;
  msg.recursion_desired = (*flags & 0x0100) != 0;
  msg.rcode = static_cast<RCode>(*flags & 0x0f);

  for (std::uint16_t i = 0; i < *qdcount; ++i) {
    auto name = Name::parse(data, at);
    if (!name) return std::nullopt;
    const auto type = get_u16(data, at);
    const auto cls = get_u16(data, at);
    if (!type || !cls) return std::nullopt;
    msg.questions.push_back(Question{std::move(*name),
                                     static_cast<Type>(*type),
                                     static_cast<Class>(*cls)});
  }
  for (std::uint16_t i = 0; i < *ancount; ++i) {
    auto name = Name::parse(data, at);
    if (!name) return std::nullopt;
    const auto type = get_u16(data, at);
    const auto cls = get_u16(data, at);
    const auto ttl = get_u32(data, at);
    const auto rdlength = get_u16(data, at);
    if (!type || !cls || !ttl || !rdlength) return std::nullopt;
    if (at + *rdlength > data.size()) return std::nullopt;
    ResourceRecord rr;
    rr.name = std::move(*name);
    rr.type = static_cast<Type>(*type);
    rr.cls = static_cast<Class>(*cls);
    rr.ttl = *ttl;
    rr.rdata.assign(data.begin() + static_cast<std::ptrdiff_t>(at),
                    data.begin() + static_cast<std::ptrdiff_t>(at + *rdlength));
    at += *rdlength;
    msg.answers.push_back(std::move(rr));
  }
  // NS/AR sections are not used by this library; accept and ignore any
  // trailing bytes they occupy.
  return msg;
}

Message make_hostname_bind_query(std::uint16_t id) {
  Message msg;
  msg.id = id;
  msg.questions.push_back(
      Question{Name{"hostname.bind"}, Type::kTxt, Class::kChaos});
  return msg;
}

Message make_hostname_bind_response(const Message& query,
                                    std::string_view site_hostname) {
  Message msg;
  msg.id = query.id;
  msg.is_response = true;
  msg.authoritative = true;
  msg.questions = query.questions;
  if (query.questions.size() != 1 ||
      !query.questions[0].name.equals_ignore_case(Name{"hostname.bind"}) ||
      query.questions[0].cls != Class::kChaos ||
      query.questions[0].type != Type::kTxt) {
    msg.rcode = RCode::kRefused;
    return msg;
  }
  ResourceRecord rr;
  rr.name = query.questions[0].name;
  rr.type = Type::kTxt;
  rr.cls = Class::kChaos;
  rr.ttl = 0;
  rr.rdata = ResourceRecord::txt_rdata(site_hostname);
  msg.answers.push_back(std::move(rr));
  return msg;
}

std::optional<std::string> parse_hostname_bind_response(
    const Message& response) {
  if (!response.is_response || response.rcode != RCode::kNoError)
    return std::nullopt;
  for (const ResourceRecord& rr : response.answers) {
    if (rr.type == Type::kTxt && rr.cls == Class::kChaos &&
        rr.name.equals_ignore_case(Name{"hostname.bind"})) {
      return ResourceRecord::txt_text(rr.rdata);
    }
  }
  return std::nullopt;
}

}  // namespace vp::dns
