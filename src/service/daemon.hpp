// verfploeterd: the continuous-mapping service (ROADMAP open item 2).
//
// The paper's Fig-9 stability argument is what makes a *continuously
// refreshed* catchment map operationally useful — the real verfploeter
// runs as a service at B-Root, not a batch job. This daemon turns the
// batch campaign machinery into that production shape, and its headline
// property is survival, not speed:
//
//  * every measurement round runs under a watchdog deadline with bounded
//    retry/backoff — a hung or failed round is abandoned, never served;
//  * the served map only ever moves forward to a *good* round's result:
//    a failed/hung/partial round keeps the last good map and transitions
//    the daemon into an explicit state machine
//        Init -> Fresh -> Stale(age) -> Degraded(reason)
//    surfaced in metrics and in every query response as bounded-staleness
//    metadata (map round + age + state);
//  * completed rounds are journaled through core::CampaignJournal with
//    the exact manifest fingerprint `vpctl campaign` uses, so a daemon
//    journal and a batch journal are interchangeable: on restart the
//    daemon resumes the live map from the journal, and the chaos harness
//    (tests/daemon_chaos_test.cpp) byte-compares the served map against
//    an uninterrupted offline run;
//  * a journal that cannot be opened or appended degrades the daemon
//    (reason journal-io) but never stops serving — disks fill, maps
//    survive.
//
// Rounds are pure functions of their RoundSpec (core/round.hpp), and the
// daemon derives specs from the same core::Campaign policy as vpctl, so
// round r served by the daemon is bit-identical to round r of a batch
// campaign with the same configuration — that equivalence is what every
// chaos invariant is checked against.
//
// Query serving (HTTP endpoints in vpd, handlers here so they are
// unit-testable and benchable without sockets):
//   /block/<ip>  owning site + map round/age/state      (O(1) map lookup)
//   /load?config=SITE=N,...  predicted per-site load under a prepend
//                config, via the incremental delta-routing session
//   /drift       online Fig-9-style change-point report between the two
//                most recent good rounds (analysis::catchment_diff)
//   /map         the served catchment as CSV — byte-identical to
//                core::write_catchment_csv of the same round
//   /healthz     state machine + staleness metadata
//   /metrics     the process Prometheus registry
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "analysis/catchment_diff.hpp"
#include "analysis/scenario.hpp"
#include "core/campaign.hpp"
#include "core/journal.hpp"
#include "net/http_server.hpp"
#include "sim/fault_injector.hpp"
#include "util/round_arena.hpp"

namespace vp::service {

/// The serving state machine. Stale is derived (Fresh + age beyond the
/// bound), Degraded is entered explicitly by a failed round or a journal
/// I/O error and left by the next clean round.
enum class MapState {
  kInit,      ///< no map yet (neither measured nor journal-resumed)
  kFresh,     ///< last round was good and the map is within its age bound
  kStale,     ///< last round was good but the map outlived stale_after_ms
  kDegraded,  ///< last round failed (watchdog/empty) or journal I/O broke
};
const char* to_string(MapState state);

/// Why the daemon is degraded; kNone in every other state.
enum class DegradedReason {
  kNone,
  kWatchdogKilled,  ///< the round hit its watchdog deadline and was abandoned
  kEmptyRound,      ///< the round completed but mapped zero blocks
  kJournalIo,       ///< journal open/append failed; serving continues
};
const char* to_string(DegradedReason reason);

/// One published snapshot: the good round backing every query answer.
/// Immutable once published; queries hold it via shared_ptr so a round
/// swap never invalidates an in-flight response.
struct ServedMap {
  core::RoundResult result;
  std::uint32_t round = 0;
  bool from_journal = false;  ///< resumed at startup rather than measured
  std::chrono::steady_clock::time_point published_at{};
};

/// Online drift detection between consecutive good rounds: the Fig-9
/// stability analysis as a change-point monitor. Alarm fires when the
/// moved fraction exceeds both the absolute threshold and the running
/// mean + 4 sigma of previous transitions (so a deployment whose normal
/// churn is high does not alarm on every round).
struct DriftReport {
  bool available = false;
  std::uint32_t from_round = 0;
  std::uint32_t to_round = 0;
  analysis::CatchmentDiff diff;
  double mean_moved_fraction = 0.0;   ///< running mean over transitions
  double stddev_moved_fraction = 0.0;
  bool alarm = false;
};

struct DaemonConfig {
  /// Base probe configuration; round r runs exactly as vpctl campaign's
  /// round r (measurement id base + r, per-round order seed).
  core::ProbeConfig probe;
  /// Measurement rounds to run before the loop parks (0 = until stop).
  std::uint32_t rounds = 0;
  /// Journal manifest round cap when rounds == 0 (continuous mode); part
  /// of the fingerprint, so resuming requires the same cap.
  std::uint32_t max_rounds = 1u << 20;
  /// Simulated spacing between rounds (the campaign policy knob).
  util::SimTime sim_interval = util::SimTime::from_minutes(15);
  /// Wall-clock spacing between round *starts* (0 = back to back).
  double cadence_ms = 0.0;
  /// Probe worker shards per round.
  unsigned threads = 1;
  /// Watchdog: a round attempt exceeding this wall-clock deadline is
  /// abandoned (its result, if it ever arrives, is discarded).
  double watchdog_ms = 30'000.0;
  /// Attempts per round beyond the first after a watchdog kill or an
  /// empty result; exhausting them fails the round (daemon degrades,
  /// keeps serving, moves on).
  int round_retries = 1;
  /// Base wall backoff between round attempts, doubled per retry.
  double retry_backoff_ms = 100.0;
  /// Age beyond which a Fresh map is reported Stale (0 = derive as
  /// 3 x cadence_ms; if cadence is also 0, age alone never stales).
  double stale_after_ms = 0.0;
  /// Absolute moved-fraction floor for the drift alarm.
  double drift_alarm_fraction = 0.05;
  /// Crash-safe journal path ("" = journaling disabled).
  std::string journal_path;
  /// Attempt journal resume on startup (ignored without a journal path).
  bool resume = true;
  /// Fault plan applied to every round (must outlive the daemon).
  const sim::FaultInjector* faults = nullptr;
};

/// Point-in-time serving status (the /healthz payload).
struct DaemonStatus {
  MapState state = MapState::kInit;
  DegradedReason reason = DegradedReason::kNone;
  bool has_map = false;
  std::uint32_t map_round = 0;
  double map_age_seconds = 0.0;
  std::uint32_t rounds_completed = 0;  ///< measured by this process
  std::uint32_t rounds_failed = 0;
  std::uint32_t watchdog_kills = 0;
  std::uint32_t rounds_resumed = 0;    ///< loaded from the journal
  core::JournalStatus journal = core::JournalStatus::kDisabled;
};

class Daemon {
 public:
  /// The scenario and deployment must outlive the daemon (vpd keeps both
  /// on main's stack). Routing is resolved once at construction — the
  /// served map only changes through measurement, exactly like the
  /// batch campaign.
  Daemon(const analysis::Scenario& scenario,
         const anycast::Deployment& deployment, DaemonConfig config);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Opens/resumes the journal and runs the supervised round loop until
  /// the round budget is spent or request_stop(). Returns false only on
  /// a journal *refusal* (fingerprint mismatch / corruption — resuming
  /// would split one campaign across two realities); an unwritable
  /// journal degrades the daemon but still runs. Blocking: callers that
  /// serve while measuring run this on its own thread.
  bool run_rounds();

  /// Asks the round loop to wind down: the in-flight attempt finishes
  /// (or hits its watchdog) and its journal append completes before the
  /// loop exits. Safe to call from any thread; a signal handler may only
  /// set an external flag that the caller forwards here.
  void request_stop();

  /// Endpoint dispatch — the whole HTTP surface as a pure(ish) function,
  /// so tests and bench_serve drive it without sockets. Thread-safe
  /// against a concurrent run_rounds().
  net::HttpResponse handle(const net::HttpRequest& request);

  /// The currently served snapshot (nullptr in Init).
  std::shared_ptr<const ServedMap> current_map() const;

  DaemonStatus status() const;
  DriftReport drift() const;
  core::JournalStatus journal_status() const;
  const anycast::Deployment& deployment() const { return deployment_; }

  /// The campaign-policy fingerprint this daemon journals under —
  /// identical to vpctl campaign's for the same configuration.
  std::uint64_t fingerprint() const { return campaign_.fingerprint(); }

 private:
  struct Attempt;  // shared watchdog/worker rendezvous state

  enum class RoundOutcome { kGood, kFailed, kStopped };

  RoundOutcome run_supervised(std::uint32_t round);
  /// One watchdogged attempt; returns the result or nullopt on timeout.
  std::optional<core::RoundResult> run_attempt(std::uint32_t round,
                                               int attempt);
  void publish(std::uint32_t round, core::RoundResult result,
               bool from_journal);
  void enter_degraded(DegradedReason reason);
  void refresh_gauges() const;
  /// Interruptible wall-clock sleep; returns false when stopping.
  bool sleep_ms(double ms);

  net::HttpResponse handle_block(const net::HttpRequest& request);
  net::HttpResponse handle_load(const net::HttpRequest& request);
  net::HttpResponse handle_healthz();
  net::HttpResponse handle_drift();
  net::HttpResponse handle_map();
  net::HttpResponse handle_metrics();

  const analysis::Scenario& scenario_;
  anycast::Deployment deployment_;
  DaemonConfig config_;
  std::shared_ptr<const bgp::RoutingTable> routes_;
  core::Campaign campaign_;  ///< spec/fingerprint policy only, never run()
  dnsload::LoadModel load_;
  core::CampaignJournal journal_;

  std::atomic<bool> stop_{false};
  mutable std::mutex state_mutex_;
  std::condition_variable stop_cv_;
  std::shared_ptr<const ServedMap> map_;          // guarded by state_mutex_
  std::shared_ptr<const ServedMap> prev_good_;    // drift baseline
  MapState state_ = MapState::kInit;              // guarded by state_mutex_
  DegradedReason reason_ = DegradedReason::kNone;
  DriftReport drift_;                             // guarded by state_mutex_
  std::uint32_t rounds_completed_ = 0;
  std::uint32_t rounds_failed_ = 0;
  std::uint32_t watchdog_kills_ = 0;
  std::uint32_t rounds_resumed_ = 0;
  core::JournalStatus journal_status_ = core::JournalStatus::kDisabled;
  // Welford accumulator over moved fractions (drift change-point).
  double drift_n_ = 0.0, drift_mean_ = 0.0, drift_m2_ = 0.0;

  mutable std::mutex session_mutex_;  // guards the /load delta session
  std::unique_ptr<analysis::DeltaSession> session_;

  // Cross-round scratch arena for the probe engine. Held as a shared_ptr
  // because a watchdog-abandoned worker may still be running against it:
  // run_attempt hands the worker its own reference and, on abandonment,
  // RESETS this member so the next attempt gets a fresh arena instead of
  // racing the zombie (the abandoned thread keeps the old arena alive
  // until it exits). Only the supervise loop touches it — no lock needed.
  std::shared_ptr<util::RoundArena> arena_;
};

}  // namespace vp::service
