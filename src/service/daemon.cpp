#include "service/daemon.hpp"

#include <cstdlib>
#include <cstring>
#include <cmath>
#include <sstream>
#include <thread>
#include <utility>

#include "analysis/load_analysis.hpp"
#include "core/dataset_io.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace vp::service {

namespace {

/// Map-age histogram bounds, in seconds: the bounded-staleness contract
/// makes "how old was the map when queried" a first-class SLO, so the
/// buckets span one cadence tick to hours.
std::span<const double> age_buckets_seconds() {
  static const double bounds[] = {0.1, 0.5, 1, 5, 15, 60, 300, 900, 3600, 14400};
  return bounds;
}

/// Test hook: VP_DAEMON_LOSS_ROUND=r swaps in a 100%-forward-loss fault
/// plan for round r's attempts — a completed-but-empty round, which the
/// supervisor must classify as failed. Rounds are independent pure
/// functions, so every *other* round still matches a clean run exactly.
const sim::FaultInjector* loss_injector() {
  static const sim::FaultInjector injector = [] {
    sim::FaultPlan plan;
    plan.probe_loss_rate = 1.0;
    return sim::FaultInjector{plan};
  }();
  return &injector;
}

bool env_round_matches(const char* name, std::uint32_t round) {
  const char* env = std::getenv(name);
  return env != nullptr &&
         std::strtoul(env, nullptr, 10) == static_cast<unsigned long>(round);
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

const char* to_string(MapState state) {
  switch (state) {
    case MapState::kInit: return "init";
    case MapState::kFresh: return "fresh";
    case MapState::kStale: return "stale";
    case MapState::kDegraded: return "degraded";
  }
  return "?";
}

const char* to_string(DegradedReason reason) {
  switch (reason) {
    case DegradedReason::kNone: return "none";
    case DegradedReason::kWatchdogKilled: return "watchdog-killed";
    case DegradedReason::kEmptyRound: return "empty-round";
    case DegradedReason::kJournalIo: return "journal-io";
  }
  return "?";
}

/// Watchdog/worker rendezvous. The worker only ever touches this shared
/// state (plus const engine/routing structures that outlive the daemon),
/// so an abandoned worker can finish late — or never — without racing the
/// supervisor: whoever holds the mutex decides whether the result counts.
struct Daemon::Attempt {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  bool abandoned = false;
  core::RoundResult result;
};

Daemon::Daemon(const analysis::Scenario& scenario,
               const anycast::Deployment& deployment, DaemonConfig config)
    : scenario_(scenario),
      deployment_(deployment),
      config_(std::move(config)),
      routes_(scenario.route(deployment_)),
      campaign_(scenario.verfploeter(), *routes_),
      load_(scenario.broot_load(analysis::kMayEpoch)) {
  // The campaign object is the daemon's spec/fingerprint policy — one
  // source of truth shared with `vpctl campaign`, which is what makes a
  // daemon journal and a batch journal interchangeable.
  const std::uint32_t manifest_rounds =
      config_.rounds > 0 ? config_.rounds : config_.max_rounds;
  campaign_.probe(config_.probe)
      .rounds(manifest_rounds)
      .interval(config_.sim_interval)
      .threads(config_.threads)
      .faults(config_.faults);
  if (!config_.journal_path.empty()) {
    campaign_.journal(config_.journal_path, anycast::fingerprint(deployment_));
  }
}

Daemon::~Daemon() { request_stop(); }

void Daemon::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  std::lock_guard lock{state_mutex_};
  stop_cv_.notify_all();
}

bool Daemon::sleep_ms(double ms) {
  if (ms <= 0) return !stop_.load(std::memory_order_relaxed);
  std::unique_lock lock{state_mutex_};
  stop_cv_.wait_for(lock, std::chrono::duration<double, std::milli>{ms},
                    [this] { return stop_.load(std::memory_order_relaxed); });
  return !stop_.load(std::memory_order_relaxed);
}

bool Daemon::run_rounds() {
  std::uint32_t next = 0;
  if (!config_.journal_path.empty()) {
    const core::JournalManifest manifest{
        campaign_.fingerprint(),
        config_.rounds > 0 ? config_.rounds : config_.max_rounds};
    auto opened =
        journal_.open(config_.journal_path, manifest, config_.resume);
    {
      std::lock_guard lock{state_mutex_};
      journal_status_ = opened.status;
      rounds_resumed_ = static_cast<std::uint32_t>(opened.completed.size());
    }
    switch (opened.status) {
      case core::JournalStatus::kFingerprintMismatch:
      case core::JournalStatus::kCorrupt:
        // Refusal, not degradation: resuming past a mismatched or corrupt
        // journal could split one campaign's artifacts across realities.
        return false;
      case core::JournalStatus::kIoError:
        // An unopenable journal must not take serving down with it: run
        // unjournaled, degraded, and keep answering queries.
        enter_degraded(DegradedReason::kJournalIo);
        break;
      case core::JournalStatus::kResumed:
        if (!opened.completed.empty()) {
          // The live map resumes from the newest journaled round; the
          // loop continues after it (completed rounds are contiguous
          // here because the daemon measures sequentially).
          auto newest = std::prev(opened.completed.end());
          next = newest->first + 1;
          publish(newest->first, std::move(newest->second), true);
        }
        break;
      default:
        break;
    }
  }

  const std::uint32_t limit =
      config_.rounds > 0 ? config_.rounds : config_.max_rounds;
  bool first = true;
  for (std::uint32_t round = next; round < limit; ++round) {
    if (!first && config_.cadence_ms > 0 && !sleep_ms(config_.cadence_ms))
      break;
    first = false;
    if (stop_.load(std::memory_order_relaxed)) break;
    if (run_supervised(round) == RoundOutcome::kStopped) break;
  }
  journal_.close();
  refresh_gauges();
  return true;
}

Daemon::RoundOutcome Daemon::run_supervised(std::uint32_t round) {
  static auto& watchdog_total =
      obs::metrics().counter("vp_daemon_rounds_watchdog_killed_total");
  static auto& completed_total =
      obs::metrics().counter("vp_daemon_rounds_completed_total");
  static auto& failed_total =
      obs::metrics().counter("vp_daemon_rounds_failed_total");

  DegradedReason last_failure = DegradedReason::kNone;
  for (int attempt = 0; attempt <= config_.round_retries; ++attempt) {
    if (stop_.load(std::memory_order_relaxed)) return RoundOutcome::kStopped;
    if (attempt > 0 &&
        !sleep_ms(config_.retry_backoff_ms * static_cast<double>(1 << (attempt - 1))))
      return RoundOutcome::kStopped;

    auto result = run_attempt(round, attempt);
    if (!result) {
      last_failure = DegradedReason::kWatchdogKilled;
      watchdog_total.add();
      {
        std::lock_guard lock{state_mutex_};
        ++watchdog_kills_;
      }
      enter_degraded(DegradedReason::kWatchdogKilled);
      continue;
    }
    if (result->map.mapped_blocks() == 0 && result->map.blocks_probed > 0) {
      // A round that completed but mapped nothing is a failed round: an
      // all-loss fault plan must never wipe the served map.
      last_failure = DegradedReason::kEmptyRound;
      enter_degraded(DegradedReason::kEmptyRound);
      continue;
    }

    // Good round: journal first (WAL discipline — the journal is what a
    // restart resumes from), then publish. An append failure degrades the
    // daemon but the freshly measured map still serves.
    if (journal_.is_open() && !journal_.append_round(round, *result)) {
      std::lock_guard lock{state_mutex_};
      journal_status_ = core::JournalStatus::kIoError;
    }
    publish(round, std::move(*result), false);
    completed_total.add();
    {
      std::lock_guard lock{state_mutex_};
      ++rounds_completed_;
    }
    refresh_gauges();
    return RoundOutcome::kGood;
  }

  failed_total.add();
  {
    std::lock_guard lock{state_mutex_};
    ++rounds_failed_;
  }
  enter_degraded(last_failure);
  refresh_gauges();
  return RoundOutcome::kFailed;
}

std::optional<core::RoundResult> Daemon::run_attempt(std::uint32_t round,
                                                     int attempt) {
  core::RoundSpec spec = campaign_.spec_for(round);
  if (env_round_matches("VP_DAEMON_LOSS_ROUND", round))
    spec.faults = loss_injector();

  // Test hook: VP_DAEMON_WEDGE_ROUND=r wedges the first matching attempt
  // (once per process) for VP_DAEMON_WEDGE_MS before probing, so chaos
  // tests can prove the watchdog without an engine that actually hangs.
  double wedge_ms = 0.0;
  if (env_round_matches("VP_DAEMON_WEDGE_ROUND", round)) {
    static std::atomic<bool> fired{false};
    if (!fired.exchange(true)) {
      const char* ms = std::getenv("VP_DAEMON_WEDGE_MS");
      wedge_ms = ms ? std::strtod(ms, nullptr) : 60'000.0;
    }
  }
  (void)attempt;

  // Cross-round arena: round N+1 reuses round N's engine workspaces. The
  // worker holds its own reference; see the member's comment for why an
  // abandoned attempt forces a fresh arena.
  if (arena_ == nullptr) arena_ = std::make_shared<util::RoundArena>();
  std::shared_ptr<util::RoundArena> arena = arena_;
  spec.arena = arena.get();

  auto att = std::make_shared<Attempt>();
  // The worker captures only shared state and const structures owned by
  // the scenario (which outlives the daemon), never `this`: if the
  // watchdog abandons it, the detached thread finishes against its own
  // Attempt and the result is discarded under the mutex.
  const core::Verfploeter* verfploeter = &scenario_.verfploeter();
  std::shared_ptr<const bgp::RoutingTable> routes = routes_;
  std::thread worker{[att, verfploeter, routes, spec, wedge_ms, arena] {
    if (wedge_ms > 0) {
      // Sleep in slices so an abandoned wedge exits promptly instead of
      // lingering for the full (deliberately long) wedge duration.
      const auto slice = std::chrono::milliseconds{10};
      for (double slept = 0; slept < wedge_ms; slept += 10) {
        {
          std::lock_guard lock{att->mutex};
          if (att->abandoned) return;
        }
        std::this_thread::sleep_for(slice);
      }
    }
    core::RoundResult result = verfploeter->run(*routes, spec);
    std::lock_guard lock{att->mutex};
    if (att->abandoned) return;
    att->result = std::move(result);
    att->done = true;
    att->cv.notify_all();
  }};

  std::unique_lock lock{att->mutex};
  const bool finished = att->cv.wait_for(
      lock, std::chrono::duration<double, std::milli>{config_.watchdog_ms},
      [&] { return att->done; });
  if (finished) {
    lock.unlock();
    worker.join();
    return std::move(att->result);
  }
  att->abandoned = true;
  lock.unlock();
  worker.detach();
  // The zombie worker may still be probing into this arena; drop our
  // reference so the next attempt builds a fresh one and can never race
  // it. The abandoned thread's shared_ptr keeps the old arena alive.
  arena_.reset();
  return std::nullopt;
}

void Daemon::publish(std::uint32_t round, core::RoundResult result,
                     bool from_journal) {
  auto served = std::make_shared<ServedMap>();
  served->result = std::move(result);
  served->round = round;
  served->from_journal = from_journal;
  served->published_at = std::chrono::steady_clock::now();

  std::shared_ptr<const ServedMap> previous;
  {
    std::lock_guard lock{state_mutex_};
    previous = map_;
  }

  // Drift is computed outside the lock (both maps are immutable) so a
  // large diff never blocks query serving.
  DriftReport report;
  if (previous) {
    report.available = true;
    report.from_round = previous->round;
    report.to_round = round;
    report.diff = analysis::diff_catchments(
        scenario_.topo(), previous->result.map, served->result.map, load_);
  }

  std::lock_guard lock{state_mutex_};
  if (report.available) {
    const double moved = report.diff.moved_fraction();
    // Alarm against the *prior* transitions' statistics, then fold the
    // new observation into the Welford accumulator.
    const double prior_mean = drift_mean_;
    const double prior_std =
        drift_n_ > 1 ? std::sqrt(drift_m2_ / (drift_n_ - 1)) : 0.0;
    report.alarm = moved > config_.drift_alarm_fraction &&
                   (drift_n_ == 0 || moved > prior_mean + 4 * prior_std);
    drift_n_ += 1;
    const double delta = moved - drift_mean_;
    drift_mean_ += delta / drift_n_;
    drift_m2_ += delta * (moved - drift_mean_);
    report.mean_moved_fraction = drift_mean_;
    report.stddev_moved_fraction =
        drift_n_ > 1 ? std::sqrt(drift_m2_ / (drift_n_ - 1)) : 0.0;
    drift_ = report;
  }
  prev_good_ = map_;
  map_ = std::move(served);
  const bool journal_ok = journal_status_ != core::JournalStatus::kIoError;
  state_ = journal_ok ? MapState::kFresh : MapState::kDegraded;
  reason_ = journal_ok ? DegradedReason::kNone : DegradedReason::kJournalIo;
}

void Daemon::enter_degraded(DegradedReason reason) {
  std::lock_guard lock{state_mutex_};
  state_ = MapState::kDegraded;
  reason_ = reason;
}

DaemonStatus Daemon::status() const {
  std::lock_guard lock{state_mutex_};
  DaemonStatus s;
  s.state = state_;
  s.reason = reason_;
  if (map_) {
    s.has_map = true;
    s.map_round = map_->round;
    s.map_age_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      map_->published_at)
            .count();
  }
  if (s.state == MapState::kFresh) {
    const double stale_after_ms = config_.stale_after_ms > 0
                                      ? config_.stale_after_ms
                                      : 3.0 * config_.cadence_ms;
    if (stale_after_ms > 0 && s.map_age_seconds * 1000.0 > stale_after_ms)
      s.state = MapState::kStale;
  }
  s.rounds_completed = rounds_completed_;
  s.rounds_failed = rounds_failed_;
  s.watchdog_kills = watchdog_kills_;
  s.rounds_resumed = rounds_resumed_;
  s.journal = journal_status_;
  return s;
}

DriftReport Daemon::drift() const {
  std::lock_guard lock{state_mutex_};
  return drift_;
}

core::JournalStatus Daemon::journal_status() const {
  std::lock_guard lock{state_mutex_};
  return journal_status_;
}

std::shared_ptr<const ServedMap> Daemon::current_map() const {
  std::lock_guard lock{state_mutex_};
  return map_;
}

void Daemon::refresh_gauges() const {
  static auto& state_gauge = obs::metrics().gauge("vp_daemon_state");
  static auto& age_gauge = obs::metrics().gauge("vp_daemon_map_age_seconds");
  const DaemonStatus s = status();
  state_gauge.set(static_cast<double>(static_cast<int>(s.state)));
  age_gauge.set(s.map_age_seconds);
}

net::HttpResponse Daemon::handle(const net::HttpRequest& request) {
  static auto& request_ms = obs::metrics().histogram(
      "vp_serve_request_ms", obs::latency_buckets_ms());
  static auto& block_total =
      obs::metrics().counter("vp_serve_requests_total{endpoint=\"block\"}");
  static auto& load_total =
      obs::metrics().counter("vp_serve_requests_total{endpoint=\"load\"}");
  static auto& healthz_total =
      obs::metrics().counter("vp_serve_requests_total{endpoint=\"healthz\"}");
  static auto& drift_total =
      obs::metrics().counter("vp_serve_requests_total{endpoint=\"drift\"}");
  static auto& map_total =
      obs::metrics().counter("vp_serve_requests_total{endpoint=\"map\"}");
  static auto& metrics_total =
      obs::metrics().counter("vp_serve_requests_total{endpoint=\"metrics\"}");
  static auto& other_total =
      obs::metrics().counter("vp_serve_requests_total{endpoint=\"other\"}");

  const auto t0 = std::chrono::steady_clock::now();
  net::HttpResponse response;
  if (request.path.starts_with("/block/")) {
    block_total.add();
    response = handle_block(request);
  } else if (request.path == "/load") {
    load_total.add();
    response = handle_load(request);
  } else if (request.path == "/healthz") {
    healthz_total.add();
    response = handle_healthz();
  } else if (request.path == "/drift") {
    drift_total.add();
    response = handle_drift();
  } else if (request.path == "/map") {
    map_total.add();
    response = handle_map();
  } else if (request.path == "/metrics") {
    metrics_total.add();
    response = handle_metrics();
  } else {
    other_total.add();
    response = net::HttpResponse::not_found();
  }
  request_ms.observe(std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count());
  return response;
}

net::HttpResponse Daemon::handle_block(const net::HttpRequest& request) {
  static auto& age_hist = obs::metrics().histogram(
      "vp_serve_map_age_seconds", age_buckets_seconds());

  const auto address = net::Ipv4Address::parse(request.path.substr(7));
  if (!address)
    return net::HttpResponse::bad_request("not an IPv4 address");
  const net::Block24 block = net::Block24::containing(*address);

  std::shared_ptr<const ServedMap> served;
  {
    std::lock_guard lock{state_mutex_};
    served = map_;
  }
  const DaemonStatus s = status();
  if (!served) {
    return net::HttpResponse::json(
        std::string{"{\"error\":\"no map yet\",\"map_state\":\""} +
            to_string(s.state) + "\"}",
        503);
  }
  age_hist.observe(s.map_age_seconds);

  const anycast::SiteId site = served->result.map.site_of(block);
  const std::string code =
      site >= 0 ? deployment_.sites[static_cast<std::size_t>(site)].code
                : "UNK";
  std::string body = "{\"block\":\"" + block.to_string() + "\",\"site\":\"" +
                     json_escape(code) +
                     "\",\"site_id\":" + std::to_string(static_cast<int>(site)) +
                     ",\"map_round\":" + std::to_string(served->round) +
                     ",\"map_state\":\"" + to_string(s.state) +
                     "\",\"map_age_seconds\":" + util::fixed(s.map_age_seconds, 3) +
                     "}";
  return net::HttpResponse::json(std::move(body));
}

net::HttpResponse Daemon::handle_load(const net::HttpRequest& request) {
  // config=SITE=N,SITE=N — per-site prepend depths layered onto the
  // daemon's base deployment; omitted sites keep their configuration.
  anycast::Deployment target = deployment_;
  const std::string config = request.param("config");
  std::string_view rest = config;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view pair = rest.substr(0, comma);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0)
      return net::HttpResponse::bad_request("config must be SITE=N,SITE=N");
    const auto site = target.site_by_code(pair.substr(0, eq));
    if (!site) {
      return net::HttpResponse::bad_request(
          "unknown site '" + std::string{pair.substr(0, eq)} + "'");
    }
    const int prepend = std::atoi(std::string{pair.substr(eq + 1)}.c_str());
    if (prepend < 0 || prepend > 16)
      return net::HttpResponse::bad_request("prepend depth out of range");
    target.sites[static_cast<std::size_t>(*site)].prepend = prepend;
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }

  // The delta session walks configurations incrementally: consecutive
  // /load queries differ in a handful of sites, so each answer recomputes
  // only the affected-AS set instead of re-routing the Internet.
  std::shared_ptr<const bgp::RoutingTable> table;
  {
    std::lock_guard lock{session_mutex_};
    if (!session_) {
      // Same routing options as Scenario::delta_session (DeltaSession is
      // not movable, so build it in place behind the pointer).
      bgp::RoutingOptions options;
      options.tiebreak_salt =
          util::hash_combine(scenario_.config().seed, analysis::kMayEpoch);
      session_ = std::make_unique<analysis::DeltaSession>(
          scenario_.topo(), deployment_, options);
    }
    table = session_->route_to(target);
  }

  // Predicted catchment over the querying blocks under that table, then
  // the paper's §5.4 load split.
  core::CatchmentMap predicted;
  for (const dnsload::BlockLoad& entry : load_.blocks()) {
    const anycast::SiteId site = table->site_for_block(entry.block);
    if (site != anycast::kUnknownSite) predicted.set(entry.block, site);
  }
  const analysis::LoadSplit split =
      analysis::predict_load(load_, predicted, deployment_.sites.size());

  std::string body = "{\"config\":\"" + json_escape(config) + "\",\"sites\":[";
  for (std::size_t s = 0; s < deployment_.sites.size(); ++s) {
    if (s > 0) body += ',';
    body += "{\"site\":\"" + json_escape(deployment_.sites[s].code) +
            "\",\"prepend\":" +
            std::to_string(target.sites[s].prepend) + ",\"daily_queries\":" +
            util::fixed(split.site_queries[s], 1) + ",\"share\":" +
            util::fixed(split.fraction_to(static_cast<anycast::SiteId>(s)), 4) +
            "}";
  }
  body += "],\"unknown_queries\":" + util::fixed(split.unknown_queries, 1) + "}";
  return net::HttpResponse::json(std::move(body));
}

net::HttpResponse Daemon::handle_healthz() {
  refresh_gauges();
  const DaemonStatus s = status();
  std::string body =
      std::string{"{\"state\":\""} + to_string(s.state) + "\",\"reason\":\"" +
      to_string(s.reason) + "\",\"has_map\":" + (s.has_map ? "true" : "false") +
      ",\"map_round\":" + std::to_string(s.map_round) +
      ",\"map_age_seconds\":" + util::fixed(s.map_age_seconds, 3) +
      ",\"rounds_completed\":" + std::to_string(s.rounds_completed) +
      ",\"rounds_failed\":" + std::to_string(s.rounds_failed) +
      ",\"watchdog_kills\":" + std::to_string(s.watchdog_kills) +
      ",\"rounds_resumed\":" + std::to_string(s.rounds_resumed) +
      ",\"journal\":\"" + core::to_string(s.journal) + "\"}";
  return net::HttpResponse::json(std::move(body), s.has_map ? 200 : 503);
}

net::HttpResponse Daemon::handle_drift() {
  const DriftReport report = drift();
  if (!report.available)
    return net::HttpResponse::json("{\"available\":false}");
  std::string body =
      "{\"available\":true,\"from_round\":" + std::to_string(report.from_round) +
      ",\"to_round\":" + std::to_string(report.to_round) +
      ",\"stable_blocks\":" + std::to_string(report.diff.stable_blocks) +
      ",\"moved_blocks\":" + std::to_string(report.diff.moved_blocks) +
      ",\"appeared_blocks\":" + std::to_string(report.diff.appeared_blocks) +
      ",\"vanished_blocks\":" + std::to_string(report.diff.vanished_blocks) +
      ",\"moved_fraction\":" + util::fixed(report.diff.moved_fraction(), 6) +
      ",\"moved_queries\":" + util::fixed(report.diff.moved_queries, 1) +
      ",\"mean_moved_fraction\":" + util::fixed(report.mean_moved_fraction, 6) +
      ",\"stddev_moved_fraction\":" +
      util::fixed(report.stddev_moved_fraction, 6) +
      ",\"alarm\":" + (report.alarm ? "true" : "false") + ",\"flows\":[";
  const std::size_t flow_count = std::min<std::size_t>(report.diff.flows.size(), 5);
  for (std::size_t i = 0; i < flow_count; ++i) {
    const analysis::SitePairFlow& flow = report.diff.flows[i];
    const auto code = [this](anycast::SiteId site) -> std::string {
      return site >= 0 ? deployment_.sites[static_cast<std::size_t>(site)].code
                       : "UNK";
    };
    if (i > 0) body += ',';
    body += "{\"from\":\"" + json_escape(code(flow.from)) + "\",\"to\":\"" +
            json_escape(code(flow.to)) +
            "\",\"blocks\":" + std::to_string(flow.blocks) +
            ",\"daily_queries\":" + util::fixed(flow.daily_queries, 1) + "}";
  }
  body += "]}";
  return net::HttpResponse::json(std::move(body));
}

net::HttpResponse Daemon::handle_map() {
  std::shared_ptr<const ServedMap> served = current_map();
  if (!served)
    return net::HttpResponse::text("no map yet\n", 503);
  // Byte-identical to core::write_catchment_csv of the served round —
  // the chaos harness diffs this directly against offline vpctl output.
  std::ostringstream out;
  core::write_catchment_csv(out, served->result, deployment_);
  net::HttpResponse response = net::HttpResponse::text(out.str());
  response.content_type = "text/csv";
  return response;
}

net::HttpResponse Daemon::handle_metrics() {
  refresh_gauges();
  return net::HttpResponse::text(
      obs::to_prometheus(obs::metrics().snapshot()));
}

}  // namespace vp::service
