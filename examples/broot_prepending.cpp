// Traffic engineering study: how does AS-path prepending move B-Root's
// catchment, and what does that mean in *queries per second* at each site?
//
// Reproduces the workflow of paper §6.1: measure the catchment of each
// prepending configuration with Verfploeter on a test prefix, weight with
// historical load, and pick the configuration whose predicted split best
// matches a target (here: protecting MIA from overload by keeping it
// under a third of total load).
//
// Run:  ./broot_prepending          (VP_SCALE / VP_SEED respected)
#include <cstdio>

#include "analysis/load_analysis.hpp"
#include "analysis/scenario.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace vp;

int main() {
  analysis::ScenarioConfig config = analysis::ScenarioConfig::from_env();
  if (std::getenv("VP_SCALE") == nullptr) config.scale = 0.4;
  analysis::Scenario scenario{config};
  std::printf("B-Root prepending study on a %zu-block Internet\n\n",
              scenario.topo().block_count());

  const auto load = scenario.broot_load(0x20170412);

  struct Option {
    const char* label;
    const char* site;
    int amount;
  };
  const Option options[] = {{"+1 LAX", "LAX", 1},
                            {"equal", "LAX", 0},
                            {"+1 MIA", "MIA", 1},
                            {"+2 MIA", "MIA", 2},
                            {"+3 MIA", "MIA", 3}};

  util::Table table{{"config", "blocks LAX", "load LAX", "load MIA",
                     "MIA share", "fits target"},
                    {util::Align::kLeft}};
  const char* best = nullptr;
  double best_mia = 0.0;
  for (const Option& option : options) {
    const auto deployment =
        scenario.broot().with_prepend(option.site, option.amount);
    const auto routes_ptr = scenario.route(deployment);
    const auto& routes = *routes_ptr;
    core::ProbeConfig probe;
    probe.measurement_id =
        static_cast<std::uint32_t>(100 + (&option - options));
    const auto map =
        scenario.verfploeter()
            .run(routes,
                 {probe, static_cast<std::uint32_t>(&option - options)})
            .map;
    const auto split = analysis::predict_load(load, map, 2);
    const double mia_share = split.fraction_to(1);
    // Target: MIA carries some but no more than a third of the load.
    const bool fits = mia_share > 0.05 && mia_share < 0.33;
    if (fits && (best == nullptr || mia_share > best_mia)) {
      best = option.label;
      best_mia = mia_share;
    }
    table.add_row({option.label, util::percent(map.fraction_to(0)),
                   util::si_count(split.site_queries[0] / 86400.0) + " q/s",
                   util::si_count(split.site_queries[1] / 86400.0) + " q/s",
                   util::percent(mia_share), fits ? "yes" : "no"});
  }
  std::printf("%s\n", table.to_string().c_str());
  if (best != nullptr) {
    std::printf(
        "recommendation: announce \"%s\" — keeps MIA loaded but under "
        "1/3 of total (%s)\n",
        best, util::percent(best_mia).c_str());
  } else {
    std::printf("no configuration satisfies the target; consider BGP "
                "communities (§6.1)\n");
  }
  return 0;
}
