// Quickstart: map the catchments of a two-site anycast service.
//
// Builds a small simulated Internet, deploys B-Root's two-site anycast
// (Table 3), runs one Verfploeter round, and prints the catchment split,
// the cleaning statistics, and how the measured map compares with the
// simulator's ground truth (something the real system cannot check!).
//
// Run:  ./quickstart            (small Internet, < a few seconds)
//       VP_SCALE=2 ./quickstart (twice the default size)
#include <cstdio>
#include <cstdlib>

#include "analysis/scenario.hpp"
#include "util/format.hpp"

using namespace vp;

int main() {
  analysis::ScenarioConfig config = analysis::ScenarioConfig::from_env();
  if (std::getenv("VP_SCALE") == nullptr)
    config.scale = 0.25;  // quickstart stays snappy
  std::printf("building a simulated Internet (scale %.2f)...\n",
              config.scale);
  analysis::Scenario scenario{config};
  const auto& topo = scenario.topo();
  std::printf("  %zu ASes, %zu announced prefixes, %zu /24 blocks\n",
              topo.as_count(), topo.announced_prefixes().size(),
              topo.block_count());

  // 1. Compute BGP routes for the B-Root deployment (memoized: a second
  //    route() of the same deployment returns the same shared table).
  const auto& broot = scenario.broot();
  const auto routes_ptr = scenario.route(broot);
  const bgp::RoutingTable& routes = *routes_ptr;

  // 2. Run one Verfploeter measurement round. A RoundSpec describes the
  //    round; spec.threads shards the probe phase without changing the
  //    result (try spec.threads = 0 for one worker per hardware thread).
  core::RoundSpec spec;
  spec.probe.measurement_id = 1001;
  spec.round = 0;
  const core::RoundResult round = scenario.verfploeter().run(routes, spec);
  const core::CatchmentMap& map = round.map;

  std::printf("\nVerfploeter round %u:\n", map.measurement_id);
  std::printf("  probes sent      : %s\n",
              util::with_commas(map.probes_sent).c_str());
  std::printf("  blocks probed    : %s\n",
              util::with_commas(map.blocks_probed).c_str());
  std::printf("  blocks mapped    : %s (%s of probed)\n",
              util::with_commas(map.mapped_blocks()).c_str(),
              util::percent(static_cast<double>(map.mapped_blocks()) /
                            static_cast<double>(map.blocks_probed))
                  .c_str());
  const auto& cleaning = map.cleaning;
  std::printf(
      "  cleaning         : %llu raw, %llu dup, %llu unsolicited, "
      "%llu late\n",
      static_cast<unsigned long long>(cleaning.raw_replies),
      static_cast<unsigned long long>(cleaning.duplicates),
      static_cast<unsigned long long>(cleaning.unsolicited),
      static_cast<unsigned long long>(cleaning.late));

  // 3. Catchment split.
  std::printf("\ncatchment split:\n");
  const auto counts = map.per_site_counts(broot.sites.size());
  for (std::size_t s = 0; s < broot.sites.size(); ++s) {
    std::printf("  %-4s %9s blocks (%s)\n", broot.sites[s].code.c_str(),
                util::with_commas(counts[s]).c_str(),
                util::percent(static_cast<double>(counts[s]) /
                              static_cast<double>(map.mapped_blocks()))
                    .c_str());
  }

  // 4. Validate against ground truth (simulation-only superpower).
  std::uint64_t correct = 0;
  for (const auto& [block, site] : map.entries()) {
    if (site == scenario.internet().ground_truth_site(routes, block, 0))
      ++correct;
  }
  std::printf("\nmeasured vs ground truth: %s of mapped blocks correct\n",
              util::percent(static_cast<double>(correct) /
                            static_cast<double>(map.mapped_blocks()))
                  .c_str());
  return 0;
}
