// Capacity planning with calibrated load prediction (paper §3.2, §5.5):
// combine a Verfploeter catchment map of a *test prefix* with historical
// query logs to predict what each site will serve before changing the
// production announcement — then check the prediction against the
// simulator's ground truth (the luxury the paper's operators didn't have).
//
// Run:  ./load_prediction
#include <cstdio>

#include "analysis/load_analysis.hpp"
#include "analysis/scenario.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace vp;

int main() {
  analysis::ScenarioConfig config = analysis::ScenarioConfig::from_env();
  if (std::getenv("VP_SCALE") == nullptr) config.scale = 0.4;
  analysis::Scenario scenario{config};

  // Historical logs from the unicast era (paper: DITL 2017-04-12).
  const auto history = scenario.broot_load(0x20170412);
  std::printf("historical load: %s q/day over %zu querying blocks\n\n",
              util::si_count(history.total_daily_queries()).c_str(),
              history.blocks().size());

  // 1. Measure the planned two-site deployment on a test prefix.
  const auto routes_ptr = scenario.route(scenario.broot());
  const auto& routes = *routes_ptr;
  core::ProbeConfig probe;
  probe.measurement_id = 77;
  const auto map = scenario.verfploeter().run(routes, {probe, 0}).map;
  std::printf("test-prefix scan mapped %s blocks (%s to LAX)\n\n",
              util::with_commas(map.mapped_blocks()).c_str(),
              util::percent(map.fraction_to(0)).c_str());

  // 2. Predict per-site daily load, hourly peaks included.
  const auto split = analysis::predict_load(history, map, 2);
  const auto hours = analysis::hourly_load_by_site(scenario.topo(), history,
                                                   map, 2);
  util::Table table{{"site", "predicted q/day", "share", "peak hour q/s"},
                    {util::Align::kLeft}};
  const char* codes[] = {"LAX", "MIA"};
  for (std::size_t s = 0; s < 2; ++s) {
    double peak = 0;
    for (int h = 0; h < 24; ++h) peak = std::max(peak, hours[h][s]);
    table.add_row({codes[s], util::si_count(split.site_queries[s]),
                   util::percent(split.fraction_to(
                       static_cast<anycast::SiteId>(s))),
                   util::si_count(peak)});
  }
  double unknown_peak = 0;
  for (int h = 0; h < 24; ++h) unknown_peak = std::max(unknown_peak, hours[h][2]);
  table.add_row({"(unmapped)", util::si_count(split.unknown_queries), "-",
                 util::si_count(unknown_peak)});
  std::printf("%s\n", table.to_string().c_str());

  // 3. Deploy "for real" and compare with actual traffic.
  const auto actual = analysis::actual_load(
      history, routes, scenario.internet().flips(), 0);
  std::printf("prediction vs actual (LAX share): %s vs %s (error %s)\n",
              util::percent(split.fraction_to(0)).c_str(),
              util::percent(actual.fraction_to(0)).c_str(),
              util::percent(std::abs(split.fraction_to(0) -
                                     actual.fraction_to(0)))
                  .c_str());
  std::printf(
      "\nnote: the unmapped %s of traffic is assumed to split like the\n"
      "mapped traffic (paper §5.4); provision headroom accordingly.\n",
      util::percent(split.unknown_queries /
                    (split.total(true)))
          .c_str());
  return 0;
}
