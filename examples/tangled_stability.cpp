// Stability monitoring on a nine-site testbed (paper §6.3): run a
// multi-hour Verfploeter campaign against Tangled, classify every vantage
// point per round, and identify the networks responsible for catchment
// flapping — the operational workflow for spotting ASes whose users would
// suffer broken TCP connections.
//
// Run:  ./tangled_stability [hours]     (default 6 hours = 24 rounds)
#include <cstdio>
#include <cstdlib>

#include "analysis/scenario.hpp"
#include "analysis/stability.hpp"
#include "core/campaign.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace vp;

int main(int argc, char** argv) {
  const double hours = argc > 1 ? std::atof(argv[1]) : 6.0;
  const auto rounds = static_cast<std::uint32_t>(hours * 4);  // 15-min grid

  analysis::ScenarioConfig config = analysis::ScenarioConfig::from_env();
  if (std::getenv("VP_SCALE") == nullptr) config.scale = 0.4;
  analysis::Scenario scenario{config};
  std::printf("Tangled stability: %u rounds over %.1f hours, %zu blocks\n\n",
              rounds, hours, scenario.topo().block_count());

  const auto routes_ptr = scenario.route(scenario.tangled());
  const auto& routes = *routes_ptr;
  core::ProbeConfig probe;
  probe.measurement_id = 100;
  probe.order_seed = 7;
  // The Campaign builder owns the per-round spacing and seeding; each
  // round gets a fresh measurement id, probe order, and start time.
  const auto results = core::Campaign{scenario.verfploeter(), routes}
                           .probe(probe)
                           .rounds(rounds)
                           .interval(util::SimTime::from_minutes(15.0))
                           .run();
  analysis::StabilityAccumulator accumulator{scenario.topo()};
  for (const core::RoundResult& result : results)
    accumulator.add_round(result.map);
  const auto report = accumulator.finish();

  std::printf("median per-round classification:\n");
  std::printf("  stable   %s\n",
              util::si_count(report.median_stable()).c_str());
  std::printf("  to-NR    %s\n", util::si_count(report.median_to_nr()).c_str());
  std::printf("  from-NR  %s\n",
              util::si_count(report.median_from_nr()).c_str());
  std::printf("  flipped  %s\n\n",
              util::si_count(report.median_flipped()).c_str());

  std::printf("networks to talk to (most flips first):\n");
  util::Table table{{"AS", "name", "flipping /24s", "flips"},
                    {util::Align::kRight, util::Align::kLeft}};
  for (std::size_t i = 0; i < report.by_as.size() && i < 8; ++i) {
    const auto& as = report.by_as[i];
    table.add_row({std::to_string(as.asn), as.name,
                   util::with_commas(as.flipping_blocks),
                   util::with_commas(as.flips)});
  }
  std::printf("%s\n", table.to_string().c_str());

  const double stable = report.median_stable();
  const double flipped = report.median_flipped();
  std::printf("verdict: anycast is %s for %s of VPs per round\n",
              flipped / stable < 0.01 ? "stable" : "UNSTABLE",
              util::percent(stable / (stable + flipped)).c_str());
  return 0;
}
